package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dense"
	"repro/internal/device"
	"repro/internal/span"
	"repro/internal/vec"
)

// This file computes the subdominant eigenpair and the spectral gap of W,
// the quantity that governs the power iteration's convergence rate
// λ₁/λ₀ (and (λ₁−µ)/(λ₀−µ) with the Section 3 shift). The gap is the
// paper's implicit cost model: near the error threshold it closes and the
// iteration count blows up, which is also where the Lanczos alternative
// pays off.

// SecondEigenpair computes the second eigenpair (λ₁, x₁) of a *symmetric*
// operator by power iteration deflated against the supplied dominant
// eigenvector: every iterate is re-orthogonalized against x₀, so the
// iteration converges to the dominant eigenpair of (I − x₀x₀ᵀ)·A.
// dominant must hold a unit-2-norm eigenvector from a converged solve of
// the same operator.
func SecondEigenpair(op Operator, dominant []float64, opts PowerOptions) (PowerResult, error) {
	n := op.Dim()
	if len(dominant) != n {
		return PowerResult{}, fmt.Errorf("core: dominant vector length %d, want %d", len(dominant), n)
	}
	if math.Abs(vec.Norm2(dominant)-1) > 1e-8 {
		return PowerResult{}, errors.New("core: dominant vector must have unit 2-norm")
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-11
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 500000
	}
	stallChecks := opts.StallChecks
	if stallChecks == 0 {
		stallChecks = 100
	}

	x := device.AllocVector(n)
	if opts.Start != nil {
		if len(opts.Start) != n {
			return PowerResult{}, fmt.Errorf("core: start vector length %d, want %d", len(opts.Start), n)
		}
		copy(x, opts.Start)
	} else {
		// A deterministic start with overlap on all coordinates but not
		// parallel to the dominant vector.
		for i := range x {
			x[i] = 1 + 0.5*math.Sin(float64(3*i+1))
		}
	}
	deflate(x, dominant)
	if vec.Norm2(x) < 1e-12 {
		return PowerResult{}, errors.New("core: start vector lies in the dominant direction")
	}
	vec.Normalize2(x)

	w := device.AllocVector(n)
	res := PowerResult{}
	bestResidual := math.Inf(1)
	stalled := 0
	for iter := 1; iter <= maxIter; iter++ {
		res.Iterations = iter
		op.Apply(w, x)
		deflate(w, dominant)
		lambda := vec.Dot(x, w)
		res.Lambda = lambda
		var rs float64
		for i, wi := range w {
			r := wi - lambda*x[i]
			rs += r * r
		}
		res.Residual = math.Sqrt(rs)
		if res.Residual <= tol {
			res.Converged = true
			break
		}
		if stallChecks > 0 {
			if res.Residual < bestResidual*(1-1e-6) {
				bestResidual = res.Residual
				stalled = 0
			} else if stalled++; stalled >= stallChecks {
				orientPositive(x)
				res.Vector = x
				return res, fmt.Errorf("%w: residual %g after %d iterations", ErrStagnated, res.Residual, iter)
			}
		}
		nrm := vec.Norm2(w)
		if nrm == 0 || math.IsNaN(nrm) || math.IsInf(nrm, 0) {
			return res, fmt.Errorf("core: deflated iteration broke down at step %d", iter)
		}
		for i := range x {
			x[i] = w[i] / nrm
		}
	}
	orientPositive(x)
	res.Vector = x
	if !res.Converged {
		return res, fmt.Errorf("%w after %d deflated iterations (residual %g)",
			ErrNoConvergence, res.Iterations, res.Residual)
	}
	return res, nil
}

func deflate(v, against []float64) {
	c := vec.Dot(against, v)
	vec.AXPY(-c, against, v)
}

// SpectralGap summarizes the top of the spectrum of W.
type SpectralGap struct {
	Lambda0, Lambda1 float64
	// Rate is the unshifted convergence factor λ₁/λ₀ of the power
	// iteration; errors shrink by this factor per step asymptotically.
	Rate float64
	// ShiftedRate is (λ₁−µ)/(λ₀−µ) for the shift µ used.
	ShiftedRate float64
	Mu          float64
}

// ErrGapUnresolved is the sentinel for spectral-gap estimates that cannot
// distinguish λ₀ from λ₁ at the attained numerical resolution. Callers that
// would switch solve methods on a tiny gap must treat an unresolved gap as
// "inside the critical window", never as a trustworthy rate.
var ErrGapUnresolved = errors.New("core: spectral gap unresolved")

// GapUnresolvedError reports why a gap estimate is not trustworthy: either
// the two leading eigenvalues coincide within the estimate's resolution
// (near-degenerate avoided crossing), or the subdominant solve terminated
// with Ritz values whose residual exceeds the separation it claims. It
// unwraps to ErrGapUnresolved; the partial SpectralGap is still returned
// alongside it so λ₀ remains usable.
type GapUnresolvedError struct {
	// Reason is "near_degenerate" or "unconverged_ritz".
	Reason string
	// Lambda0 and Lambda1 are the estimates that could not be separated.
	Lambda0, Lambda1 float64
	// Separation is λ₀ − λ₁ as computed.
	Separation float64
	// Resolution is the uncertainty the estimate carries (the subdominant
	// residual, floored at the floating-point resolution of λ₀).
	Resolution float64
}

func (e *GapUnresolvedError) Error() string {
	return fmt.Sprintf("core: spectral gap unresolved (%s): λ₀ = %.17g, λ₁ = %.17g, separation %.3g below resolution %.3g",
		e.Reason, e.Lambda0, e.Lambda1, e.Separation, e.Resolution)
}

// Unwrap exposes the sentinel for errors.Is.
func (e *GapUnresolvedError) Unwrap() error { return ErrGapUnresolved }

// EstimateGap solves for both leading eigenpairs of the *symmetric*
// operator and derives the convergence rates with and without the shift µ.
//
// When the two leading eigenvalues cannot be separated at the attained
// numerical resolution — the subdominant solve stagnated with a residual
// larger than the separation it reports, or λ₁ sits within floating-point
// noise of λ₀ (the near-degenerate avoided crossing of the critical
// window) — EstimateGap returns the partial SpectralGap together with a
// *GapUnresolvedError instead of a spuriously tiny (or negative) gap that
// would mis-trigger a method switch.
func EstimateGap(op Operator, mu float64, opts PowerOptions) (*SpectralGap, error) {
	// A stagnated dominant solve has hit the floating-point floor; its
	// eigenpair is still the best attainable and the gap math stays valid.
	first, err := PowerIteration(op, opts)
	if err != nil && !errors.Is(err, ErrStagnated) {
		return nil, fmt.Errorf("core: dominant solve failed: %w", err)
	}
	secondOpts := opts
	secondOpts.Start = nil
	secondOpts.Shift = 0
	second, err := SecondEigenpair(op, first.Vector, secondOpts)
	if err != nil && !errors.Is(err, ErrStagnated) {
		return nil, fmt.Errorf("core: subdominant solve failed: %w", err)
	}
	g := &SpectralGap{
		Lambda0: first.Lambda,
		Lambda1: second.Lambda,
		Mu:      mu,
	}
	g.Rate = second.Lambda / first.Lambda
	g.ShiftedRate = (second.Lambda - mu) / (first.Lambda - mu)
	// Resolution of the λ₁ estimate: a Ritz value with residual r can sit
	// anywhere within r of a true eigenvalue, and no estimate resolves
	// below the floating-point granularity of λ₀ itself.
	resolution := math.Max(second.Residual, 64*2.220446049250313e-16*math.Abs(first.Lambda))
	sep := first.Lambda - second.Lambda
	if !second.Converged && sep <= resolution {
		return g, &GapUnresolvedError{
			Reason: "unconverged_ritz", Lambda0: first.Lambda, Lambda1: second.Lambda,
			Separation: sep, Resolution: resolution,
		}
	}
	if sep <= resolution {
		return g, &GapUnresolvedError{
			Reason: "near_degenerate", Lambda0: first.Lambda, Lambda1: second.Lambda,
			Separation: sep, Resolution: resolution,
		}
	}
	return g, nil
}

// RitzGap runs k unrestarted Lanczos steps on the *symmetric* operator and
// returns the two leading Ritz values (θ₀, θ₁). By Cauchy interlacing both
// are lower bounds (θ₀ ≤ λ₀, θ₁ ≤ λ₁), and θ₀ converges to λ₀ far faster
// than a power iteration — which makes this the cheap online gap estimate
// the adaptive method selector runs per sweep point (k matrix–vector
// products, no restart, no residual loop). start must be a deterministic
// vector with broad spectral overlap; nil selects the same pseudo-random
// deterministic start SecondEigenpair uses. If the Krylov space degenerates
// before two Ritz values exist, a *GapUnresolvedError is returned.
func RitzGap(op Operator, k int, start []float64, work *KrylovWork) (theta0, theta1 float64, err error) {
	n := op.Dim()
	if k < 2 {
		return 0, 0, fmt.Errorf("core: RitzGap needs k ≥ 2 Lanczos steps, got %d", k)
	}
	if k > n {
		k = n
	}
	sr := span.Installed()
	sp := beginPhase(sr, PhaseGapProbe)
	if work == nil {
		work = NewKrylovWork(n)
	}
	basis, alpha, beta, w := work.krylov(n, k)
	q := basis[0]
	if start != nil {
		if len(start) != n {
			span.End(sp, int64(n), int64(k))
			return 0, 0, fmt.Errorf("core: start vector length %d, want %d", len(start), n)
		}
		copy(q, start)
	} else {
		for i := range q {
			q[i] = 1 + 0.5*math.Sin(float64(3*i+1))
		}
	}
	if vec.Norm2(q) == 0 {
		span.End(sp, int64(n), int64(k))
		return 0, 0, errors.New("core: start vector is zero")
	}
	vec.Normalize2(q)
	built := lanczosSteps(op, basis, alpha, beta, w, k, nil)
	span.End(sp, int64(n), int64(built))
	if built < 2 {
		return alpha[0], alpha[0], &GapUnresolvedError{
			Reason: "unconverged_ritz", Lambda0: alpha[0], Lambda1: alpha[0],
			Separation: 0, Resolution: math.Abs(beta[0]),
		}
	}
	vals, err := tridiagEigenvalues(alpha[:built], beta[:built-1])
	if err != nil {
		return 0, 0, err
	}
	return vals[0], vals[1], nil
}

// tridiagEigenvalues returns the eigenvalues of the symmetric tridiagonal
// matrix with diagonal alpha and off-diagonal beta, sorted descending.
func tridiagEigenvalues(alpha, beta []float64) ([]float64, error) {
	k := len(alpha)
	t := dense.NewMatrix(k, k)
	for j := 0; j < k; j++ {
		t.Set(j, j, alpha[j])
		if j+1 < k {
			t.Set(j, j+1, beta[j])
			t.Set(j+1, j, beta[j])
		}
	}
	vals, _, err := dense.JacobiEigen(t, 1e-15)
	if err != nil {
		return nil, fmt.Errorf("core: tridiagonal eigensolve failed: %w", err)
	}
	return vals, nil
}

// PredictIterations estimates the number of power-iteration steps needed
// to shrink the eigenvector error by factor eps at convergence rate
// rate ∈ (0, 1): ⌈log(eps)/log(rate)⌉.
func PredictIterations(rate, eps float64) (int, error) {
	if !(rate > 0 && rate < 1) {
		return 0, fmt.Errorf("core: rate %g outside (0, 1)", rate)
	}
	if !(eps > 0 && eps < 1) {
		return 0, fmt.Errorf("core: eps %g outside (0, 1)", eps)
	}
	return int(math.Ceil(math.Log(eps) / math.Log(rate))), nil
}
