package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/vec"
)

// This file computes the subdominant eigenpair and the spectral gap of W,
// the quantity that governs the power iteration's convergence rate
// λ₁/λ₀ (and (λ₁−µ)/(λ₀−µ) with the Section 3 shift). The gap is the
// paper's implicit cost model: near the error threshold it closes and the
// iteration count blows up, which is also where the Lanczos alternative
// pays off.

// SecondEigenpair computes the second eigenpair (λ₁, x₁) of a *symmetric*
// operator by power iteration deflated against the supplied dominant
// eigenvector: every iterate is re-orthogonalized against x₀, so the
// iteration converges to the dominant eigenpair of (I − x₀x₀ᵀ)·A.
// dominant must hold a unit-2-norm eigenvector from a converged solve of
// the same operator.
func SecondEigenpair(op Operator, dominant []float64, opts PowerOptions) (PowerResult, error) {
	n := op.Dim()
	if len(dominant) != n {
		return PowerResult{}, fmt.Errorf("core: dominant vector length %d, want %d", len(dominant), n)
	}
	if math.Abs(vec.Norm2(dominant)-1) > 1e-8 {
		return PowerResult{}, errors.New("core: dominant vector must have unit 2-norm")
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-11
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 500000
	}
	stallChecks := opts.StallChecks
	if stallChecks == 0 {
		stallChecks = 100
	}

	x := make([]float64, n)
	if opts.Start != nil {
		if len(opts.Start) != n {
			return PowerResult{}, fmt.Errorf("core: start vector length %d, want %d", len(opts.Start), n)
		}
		copy(x, opts.Start)
	} else {
		// A deterministic start with overlap on all coordinates but not
		// parallel to the dominant vector.
		for i := range x {
			x[i] = 1 + 0.5*math.Sin(float64(3*i+1))
		}
	}
	deflate(x, dominant)
	if vec.Norm2(x) < 1e-12 {
		return PowerResult{}, errors.New("core: start vector lies in the dominant direction")
	}
	vec.Normalize2(x)

	w := make([]float64, n)
	res := PowerResult{}
	bestResidual := math.Inf(1)
	stalled := 0
	for iter := 1; iter <= maxIter; iter++ {
		res.Iterations = iter
		op.Apply(w, x)
		deflate(w, dominant)
		lambda := vec.Dot(x, w)
		res.Lambda = lambda
		var rs float64
		for i, wi := range w {
			r := wi - lambda*x[i]
			rs += r * r
		}
		res.Residual = math.Sqrt(rs)
		if res.Residual <= tol {
			res.Converged = true
			break
		}
		if stallChecks > 0 {
			if res.Residual < bestResidual*(1-1e-6) {
				bestResidual = res.Residual
				stalled = 0
			} else if stalled++; stalled >= stallChecks {
				orientPositive(x)
				res.Vector = x
				return res, fmt.Errorf("%w: residual %g after %d iterations", ErrStagnated, res.Residual, iter)
			}
		}
		nrm := vec.Norm2(w)
		if nrm == 0 || math.IsNaN(nrm) || math.IsInf(nrm, 0) {
			return res, fmt.Errorf("core: deflated iteration broke down at step %d", iter)
		}
		for i := range x {
			x[i] = w[i] / nrm
		}
	}
	orientPositive(x)
	res.Vector = x
	if !res.Converged {
		return res, fmt.Errorf("%w after %d deflated iterations (residual %g)",
			ErrNoConvergence, res.Iterations, res.Residual)
	}
	return res, nil
}

func deflate(v, against []float64) {
	c := vec.Dot(against, v)
	vec.AXPY(-c, against, v)
}

// SpectralGap summarizes the top of the spectrum of W.
type SpectralGap struct {
	Lambda0, Lambda1 float64
	// Rate is the unshifted convergence factor λ₁/λ₀ of the power
	// iteration; errors shrink by this factor per step asymptotically.
	Rate float64
	// ShiftedRate is (λ₁−µ)/(λ₀−µ) for the shift µ used.
	ShiftedRate float64
	Mu          float64
}

// EstimateGap solves for both leading eigenpairs of the *symmetric*
// operator and derives the convergence rates with and without the shift µ.
func EstimateGap(op Operator, mu float64, opts PowerOptions) (*SpectralGap, error) {
	first, err := PowerIteration(op, opts)
	if err != nil {
		return nil, fmt.Errorf("core: dominant solve failed: %w", err)
	}
	secondOpts := opts
	secondOpts.Start = nil
	secondOpts.Shift = 0
	second, err := SecondEigenpair(op, first.Vector, secondOpts)
	if err != nil && !errors.Is(err, ErrStagnated) {
		return nil, fmt.Errorf("core: subdominant solve failed: %w", err)
	}
	g := &SpectralGap{
		Lambda0: first.Lambda,
		Lambda1: second.Lambda,
		Mu:      mu,
	}
	g.Rate = second.Lambda / first.Lambda
	g.ShiftedRate = (second.Lambda - mu) / (first.Lambda - mu)
	return g, nil
}

// PredictIterations estimates the number of power-iteration steps needed
// to shrink the eigenvector error by factor eps at convergence rate
// rate ∈ (0, 1): ⌈log(eps)/log(rate)⌉.
func PredictIterations(rate, eps float64) (int, error) {
	if !(rate > 0 && rate < 1) {
		return 0, fmt.Errorf("core: rate %g outside (0, 1)", rate)
	}
	if !(eps > 0 && eps < 1) {
		return 0, fmt.Errorf("core: eps %g outside (0, 1)", eps)
	}
	return int(math.Ceil(math.Log(eps) / math.Log(rate))), nil
}
