package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/landscape"
	"repro/internal/mutation"
	"repro/internal/rng"
	"repro/internal/vec"
)

func TestLanczosMatchesPowerIteration(t *testing.T) {
	r := rng.New(1)
	for _, nu := range []int{5, 8, 10} {
		q := mutation.MustUniform(nu, 0.01)
		l := randLandscape(r, nu)
		op, err := NewFmmpOperator(q, l, Symmetric, nil)
		if err != nil {
			t.Fatal(err)
		}
		pi, err := PowerIteration(op, PowerOptions{Tol: 1e-12, Start: FitnessStart(l)})
		if err != nil {
			t.Fatal(err)
		}
		lz, err := Lanczos(op, LanczosOptions{Tol: 1e-12, Start: FitnessStart(l)})
		if err != nil {
			t.Fatalf("ν=%d: %v", nu, err)
		}
		if !lz.Converged {
			t.Fatalf("ν=%d: Lanczos did not converge", nu)
		}
		if math.Abs(lz.Lambda-pi.Lambda) > 1e-9 {
			t.Errorf("ν=%d: Lanczos λ = %.15g, power λ = %.15g", nu, lz.Lambda, pi.Lambda)
		}
		if d := vec.DistInf(lz.Vector, pi.Vector); d > 1e-7 {
			t.Errorf("ν=%d: eigenvectors differ by %g", nu, d)
		}
		t.Logf("ν=%d: Lanczos %d matvecs vs power %d iterations (basis %d bytes)",
			nu, lz.MatVecs, pi.Iterations, lz.BasisBytes)
	}
}

func TestLanczosUsesFewerMatVecsOnHardProblem(t *testing.T) {
	// Near the error threshold the spectral gap closes and the power
	// iteration slows dramatically; Lanczos should need far fewer matvecs.
	const nu = 10
	q := mutation.MustUniform(nu, 0.04) // close to the single-peak threshold
	l, _ := landscape.NewSinglePeak(nu, 2, 1)
	op, _ := NewFmmpOperator(q, l, Symmetric, nil)
	pi, err := PowerIteration(op, PowerOptions{Tol: 1e-11, Start: FitnessStart(l)})
	if err != nil {
		t.Fatal(err)
	}
	lz, err := Lanczos(op, LanczosOptions{Tol: 1e-11, Start: FitnessStart(l)})
	if err != nil {
		t.Fatal(err)
	}
	if lz.MatVecs >= pi.Iterations {
		t.Errorf("Lanczos used %d matvecs, power iteration %d — expected Lanczos to win near the threshold",
			lz.MatVecs, pi.Iterations)
	}
	t.Logf("matvecs: Lanczos %d, power %d", lz.MatVecs, pi.Iterations)
}

func TestLanczosBudgetExhaustion(t *testing.T) {
	q := mutation.MustUniform(8, 0.03)
	l, _ := landscape.NewSinglePeak(8, 2, 1)
	op, _ := NewFmmpOperator(q, l, Symmetric, nil)
	res, err := Lanczos(op, LanczosOptions{Tol: 1e-30, BasisSize: 3, MaxRestarts: 2})
	if !errors.Is(err, ErrNoConvergence) {
		t.Errorf("err = %v, want ErrNoConvergence", err)
	}
	if res.Restarts != 2 || res.Vector == nil {
		t.Error("partial result must be populated")
	}
}

func TestLanczosBadStart(t *testing.T) {
	q := mutation.MustUniform(4, 0.1)
	l, _ := landscape.NewUniform(4, 1)
	op, _ := NewFmmpOperator(q, l, Symmetric, nil)
	if _, err := Lanczos(op, LanczosOptions{Start: make([]float64, 3)}); err == nil {
		t.Error("wrong start length must error")
	}
	if _, err := Lanczos(op, LanczosOptions{Start: make([]float64, 16)}); err == nil {
		t.Error("zero start must error")
	}
}

func TestLanczosBasisLargerThanDim(t *testing.T) {
	// BasisSize > N must clamp and still work.
	q := mutation.MustUniform(3, 0.1)
	l := randLandscape(rng.New(2), 3)
	op, _ := NewFmmpOperator(q, l, Symmetric, nil)
	res, err := Lanczos(op, LanczosOptions{Tol: 1e-12, BasisSize: 100, Start: FitnessStart(l)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("full-dimension Lanczos must converge in one cycle")
	}
}

func TestInverseIterationQFindsDominant(t *testing.T) {
	// With µ just above 1 the nearest eigenvalue of Q is λ = 1 (the
	// dominant one) whose eigenvector is the constant vector.
	const nu = 8
	q := mutation.MustUniform(nu, 0.03)
	res, err := InverseIterationQ(q, 1.1, PowerOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Lambda-1) > 1e-10 {
		t.Errorf("λ = %g, want 1", res.Lambda)
	}
	want := 1 / math.Sqrt(float64(q.Dim()))
	for i, v := range res.Vector {
		if math.Abs(v-want) > 1e-8 {
			t.Fatalf("x[%d] = %g, want constant %g", i, v, want)
		}
	}
}

func TestInverseIterationQFindsInteriorEigenvalue(t *testing.T) {
	// Target the second eigenvalue (1−2p): any converged eigenpair must
	// satisfy the residual and have λ = (1−2p).
	const nu = 6
	const p = 0.05
	q := mutation.MustUniform(nu, p)
	target := 1 - 2*p
	res, err := InverseIterationQ(q, target+0.003, PowerOptions{Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Lambda-target) > 1e-9 {
		t.Errorf("λ = %g, want %g", res.Lambda, target)
	}
}

func TestInverseIterationQRejectsNonUniform(t *testing.T) {
	ps, err := mutation.NewPerSite([]mutation.Factor2{
		{A: 0.9, B: 0.2, C: 0.1, D: 0.8}, {A: 0.8, B: 0.1, C: 0.2, D: 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InverseIterationQ(ps, 0.5, PowerOptions{}); err == nil {
		t.Error("non-uniform process must be rejected")
	}
}

func TestRayleighQuotientIterationQ(t *testing.T) {
	// Start near the constant vector: RQI must converge to λ = 1 in very
	// few steps (cubic convergence).
	const nu = 8
	q := mutation.MustUniform(nu, 0.02)
	start := make([]float64, q.Dim())
	r := rng.New(3)
	for i := range start {
		start[i] = 1 + 0.01*(2*r.Float64()-1)
	}
	res, err := RayleighQuotientIterationQ(q, start, PowerOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Lambda-1) > 1e-10 {
		t.Errorf("λ = %g, want 1", res.Lambda)
	}
	if res.Iterations > 6 {
		t.Errorf("RQI took %d steps; cubic convergence expected ≤ 6", res.Iterations)
	}
}

func TestRayleighQuotientIterationQBadInput(t *testing.T) {
	q := mutation.MustUniform(4, 0.1)
	if _, err := RayleighQuotientIterationQ(q, make([]float64, 3), PowerOptions{}); err == nil {
		t.Error("wrong start length must error")
	}
}
