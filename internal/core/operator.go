// Package core implements the paper's fast quasispecies solver: implicit
// linear operators for the three equivalent eigenproblem formulations
// (Eqs. 3–5), the residual-monitored power iteration with the provably safe
// convergence shift µ = (1−2p)^ν·f_min (Section 3), a restarted Lanczos
// alternative, and the shift-and-invert iteration for pure mutation
// matrices. Operators can run serially or on a device (the GPU analogue),
// and can be backed by any of the matrix–vector products the paper
// compares: Fmmp, Xmvp(dmax) or dense Smvp.
package core

import (
	"fmt"
	"math"

	"repro/internal/dense"
	"repro/internal/device"
	"repro/internal/landscape"
	"repro/internal/mutation"
	"repro/internal/vec"
)

// Formulation selects among the three mathematically equivalent
// eigenproblems of Eqs. 3–5. Their dominant eigenvalues coincide; the
// eigenvectors are related by diagonal scalings (see ConvertEigenvector).
type Formulation int

const (
	// Right is Q·F·x = λx (Eq. 3). Its eigenvector holds the relative
	// concentrations of the quasispecies directly.
	Right Formulation = iota
	// Symmetric is F^½·Q·F^½·x = λx (Eq. 4), the symmetric positive
	// definite form used by Lanczos.
	Symmetric
	// Left is F·Q·x = λx (Eq. 5).
	Left
)

func (f Formulation) String() string {
	switch f {
	case Right:
		return "Q·F"
	case Symmetric:
		return "F^1/2·Q·F^1/2"
	case Left:
		return "F·Q"
	default:
		return fmt.Sprintf("Formulation(%d)", int(f))
	}
}

// Operator is an implicitly represented square matrix. Apply computes
// dst ← A·src; implementations permit dst == src (aliasing) and may use
// internal scratch, so a given Operator must not be applied concurrently
// with itself.
type Operator interface {
	// Dim returns the operator dimension N.
	Dim() int
	// Apply computes dst ← A·src. dst may alias src.
	Apply(dst, src []float64)
}

// ---------------------------------------------------------------------------
// Fmmp-backed operator (the paper's fast path)

// FmmpOperator applies W in one of the three formulations using the fast
// mutation matrix product — Θ(N·log₂N) per Apply, no matrix storage.
type FmmpOperator struct {
	Q    *mutation.Process
	F    landscape.Landscape
	Form Formulation
	Dev  *device.Device // nil for serial execution

	fdiag []float64 // materialized diagonal used by the formulation
	fsqrt []float64 // √f for the symmetric form (nil otherwise)
}

// NewFmmpOperator builds the operator; the landscape diagonal is
// materialized once (Θ(N), as Section 3 notes is unavoidable for general
// F). dev == nil selects serial execution.
func NewFmmpOperator(q *mutation.Process, f landscape.Landscape, form Formulation, dev *device.Device) (*FmmpOperator, error) {
	if q.ChainLen() != f.ChainLen() {
		return nil, fmt.Errorf("core: mutation ν = %d but landscape ν = %d", q.ChainLen(), f.ChainLen())
	}
	op := &FmmpOperator{Q: q, F: f, Form: form, Dev: dev}
	op.fdiag = landscape.Materialize(f)
	if form == Symmetric {
		op.fsqrt = make([]float64, len(op.fdiag))
		for i, v := range op.fdiag {
			op.fsqrt[i] = math.Sqrt(v)
		}
	}
	return op, nil
}

// WithProcess returns a new operator driving the same landscape diagonal
// through a different mutation process of equal chain length — the
// per-point operator of an error-rate sweep. The Θ(N) materialized
// diagonal (and √F for the symmetric form) is shared with op, so building
// the operator for the next sweep point is Θ(1).
func (op *FmmpOperator) WithProcess(q *mutation.Process) (*FmmpOperator, error) {
	if q.ChainLen() != op.F.ChainLen() {
		return nil, fmt.Errorf("core: mutation ν = %d but landscape ν = %d", q.ChainLen(), op.F.ChainLen())
	}
	return &FmmpOperator{Q: q, F: op.F, Form: op.Form, Dev: op.Dev, fdiag: op.fdiag, fsqrt: op.fsqrt}, nil
}

func (op *FmmpOperator) Dim() int { return op.Q.Dim() }

// Apply computes dst ← W·src per the selected formulation.
func (op *FmmpOperator) Apply(dst, src []float64) {
	if len(dst) != op.Dim() || len(src) != op.Dim() {
		panic("core: FmmpOperator.Apply dimension mismatch")
	}
	switch op.Form {
	case Right: // Q·F: scale then transform
		mulInto(op.Dev, dst, src, op.fdiag)
		op.applyQ(dst)
	case Symmetric: // F^½·Q·F^½
		mulInto(op.Dev, dst, src, op.fsqrt)
		op.applyQ(dst)
		mulInto(op.Dev, dst, dst, op.fsqrt)
	case Left: // F·Q: transform then scale
		if &dst[0] != &src[0] {
			copyInto(op.Dev, dst, src)
		}
		op.applyQ(dst)
		mulInto(op.Dev, dst, dst, op.fdiag)
	default:
		panic(fmt.Sprintf("core: unknown formulation %d", op.Form))
	}
}

func (op *FmmpOperator) applyQ(v []float64) {
	if op.Dev != nil {
		op.Q.ApplyDevice(op.Dev, v)
	} else {
		op.Q.Apply(v)
	}
}

// Fitness returns the materialized fitness diagonal (read-only).
func (op *FmmpOperator) Fitness() []float64 { return op.fdiag }

// ---------------------------------------------------------------------------
// Xmvp-backed operator (the baseline of [10])

// XmvpOperator applies W through the XOR-based (sparsified) product.
// With DMax = ν it is the paper's Smvp-equivalent Θ(N²) reference; smaller
// DMax gives the approximative baseline.
type XmvpOperator struct {
	X    *mutation.Xmvp
	F    landscape.Landscape
	Form Formulation
	Dev  *device.Device

	fdiag   []float64
	fsqrt   []float64
	scratch []float64
}

// NewXmvpOperator builds the operator around an existing Xmvp product.
func NewXmvpOperator(x *mutation.Xmvp, f landscape.Landscape, form Formulation, dev *device.Device) (*XmvpOperator, error) {
	if x.ChainLen() != f.ChainLen() {
		return nil, fmt.Errorf("core: Xmvp ν = %d but landscape ν = %d", x.ChainLen(), f.ChainLen())
	}
	op := &XmvpOperator{X: x, F: f, Form: form, Dev: dev}
	op.fdiag = landscape.Materialize(f)
	if form == Symmetric {
		op.fsqrt = make([]float64, len(op.fdiag))
		for i, v := range op.fdiag {
			op.fsqrt[i] = math.Sqrt(v)
		}
	}
	op.scratch = make([]float64, x.Dim())
	return op, nil
}

func (op *XmvpOperator) Dim() int { return op.X.Dim() }

// Apply computes dst ← W·src per the selected formulation.
func (op *XmvpOperator) Apply(dst, src []float64) {
	if len(dst) != op.Dim() || len(src) != op.Dim() {
		panic("core: XmvpOperator.Apply dimension mismatch")
	}
	switch op.Form {
	case Right:
		mulInto(op.Dev, op.scratch, src, op.fdiag)
		op.applyQ(dst, op.scratch)
	case Symmetric:
		mulInto(op.Dev, op.scratch, src, op.fsqrt)
		op.applyQ(dst, op.scratch)
		mulInto(op.Dev, dst, dst, op.fsqrt)
	case Left:
		copyInto(op.Dev, op.scratch, src)
		op.applyQ(dst, op.scratch)
		mulInto(op.Dev, dst, dst, op.fdiag)
	default:
		panic(fmt.Sprintf("core: unknown formulation %d", op.Form))
	}
}

func (op *XmvpOperator) applyQ(dst, src []float64) {
	if op.Dev != nil {
		op.X.ApplyDevice(op.Dev, dst, src)
	} else {
		op.X.Apply(dst, src)
	}
}

// ---------------------------------------------------------------------------
// Dense operator (explicit Smvp)

// DenseOperator wraps an explicitly stored matrix — the textbook Smvp with
// Θ(N²) storage and time. Only feasible for small ν; it is the ground
// truth the fast paths are verified against.
type DenseOperator struct {
	M       *dense.Matrix
	scratch []float64
}

// NewDenseOperator wraps m, which must be square.
func NewDenseOperator(m *dense.Matrix) (*DenseOperator, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("core: dense operator must be square, got %d×%d", m.Rows, m.Cols)
	}
	return &DenseOperator{M: m, scratch: make([]float64, m.Rows)}, nil
}

// NewDenseW materializes W for the given formulation from Q and F — the
// fully explicit baseline.
func NewDenseW(q *mutation.Process, f landscape.Landscape, form Formulation) (*DenseOperator, error) {
	if q.ChainLen() != f.ChainLen() {
		return nil, fmt.Errorf("core: mutation ν = %d but landscape ν = %d", q.ChainLen(), f.ChainLen())
	}
	m := q.Dense()
	fd := landscape.Materialize(f)
	switch form {
	case Right:
		m.ScaleColumns(fd)
	case Symmetric:
		s := make([]float64, len(fd))
		for i, v := range fd {
			s[i] = math.Sqrt(v)
		}
		m.ScaleColumns(s)
		m.ScaleRows(s)
	case Left:
		m.ScaleRows(fd)
	default:
		return nil, fmt.Errorf("core: unknown formulation %d", form)
	}
	return NewDenseOperator(m)
}

func (op *DenseOperator) Dim() int { return op.M.Rows }

// Apply computes dst ← M·src; aliasing is handled through a scratch copy.
func (op *DenseOperator) Apply(dst, src []float64) {
	if &dst[0] == &src[0] {
		copy(op.scratch, src)
		op.M.MatVec(dst, op.scratch)
		return
	}
	op.M.MatVec(dst, src)
}

// ---------------------------------------------------------------------------
// Shifted operator and eigenvector conversions

// ShiftedOperator applies A − µI for a base operator A. Shifting the
// spectrum accelerates the power iteration (Section 3).
type ShiftedOperator struct {
	Base Operator
	Mu   float64
	Dev  *device.Device

	// scratch preserves src across aliased Apply calls; allocated once on
	// first use instead of cloning src every iteration.
	scratch []float64
}

func (op *ShiftedOperator) Dim() int { return op.Base.Dim() }

// Apply computes dst ← A·src − µ·src. dst may alias src.
func (op *ShiftedOperator) Apply(dst, src []float64) {
	if &dst[0] == &src[0] {
		// In-place: need the original src for the shift term.
		if len(op.scratch) != len(src) {
			op.scratch = make([]float64, len(src))
		}
		tmp := op.scratch
		copyInto(op.Dev, tmp, src)
		op.Base.Apply(dst, tmp)
		axpyInto(op.Dev, -op.Mu, tmp, dst)
		return
	}
	op.Base.Apply(dst, src)
	axpyInto(op.Dev, -op.Mu, src, dst)
}

// ConvertEigenvector converts the dominant eigenvector between the three
// formulations using xR = F^(−½)·xS, xS = F^(−½)·xL, xR = F^(−1)·xL
// (Section 1.1). The conversion happens in place on x.
func ConvertEigenvector(x []float64, from, to Formulation, f landscape.Landscape) error {
	if len(x) != f.Dim() {
		return fmt.Errorf("core: eigenvector length %d does not match landscape dimension %d", len(x), f.Dim())
	}
	if from == to {
		return nil
	}
	// Express both forms on the exponent scale of F: xR ~ F^0·xR,
	// xS = F^(½)·xR, xL = F^1·xR ⇒ x_to = F^(e_to − e_from)·x_from.
	exp := map[Formulation]float64{Right: 0, Symmetric: 0.5, Left: 1}
	eFrom, okF := exp[from]
	eTo, okT := exp[to]
	if !okF || !okT {
		return fmt.Errorf("core: unknown formulation in conversion %v→%v", from, to)
	}
	d := eTo - eFrom
	for i := range x {
		x[i] *= math.Pow(f.At(uint64(i)), d)
	}
	return nil
}

// ---------------------------------------------------------------------------
// small helpers (serial or device execution)

func mulInto(dev *device.Device, dst, a, b []float64) {
	if dev != nil {
		dev.Mul(dst, a, b)
	} else {
		vec.Mul(dst, a, b)
	}
}

func copyInto(dev *device.Device, dst, src []float64) {
	if dev != nil {
		dev.Copy(dst, src)
	} else {
		copy(dst, src)
	}
}

func axpyInto(dev *device.Device, a float64, x, y []float64) {
	if dev != nil {
		dev.AXPY(a, x, y)
	} else {
		vec.AXPY(a, x, y)
	}
}
