package core

import (
	"testing"

	"repro/internal/mutation"
	"repro/internal/rng"
)

func TestInstrumentedOperatorCounts(t *testing.T) {
	const nu = 8
	q := mutation.MustUniform(nu, 0.01)
	l := randLandscape(rng.New(1), nu)
	base, _ := NewFmmpOperator(q, l, Right, nil)
	op := Instrument(base)
	if op.Dim() != base.Dim() {
		t.Fatal("Dim not delegated")
	}

	res, err := PowerIteration(op, PowerOptions{Tol: 1e-10, Start: FitnessStart(l)})
	if err != nil {
		t.Fatal(err)
	}
	if got := op.Applies(); got != int64(res.Iterations) {
		t.Errorf("counted %d applies, solver reports %d iterations", got, res.Iterations)
	}
	if op.Elapsed() <= 0 {
		t.Error("no time recorded")
	}
	if op.EffectiveBandwidth() <= 0 {
		t.Error("no bandwidth derived")
	}
	op.Reset()
	if op.Applies() != 0 || op.Elapsed() != 0 {
		t.Error("Reset did not zero counters")
	}
}

func TestInstrumentedResultsUnchanged(t *testing.T) {
	const nu = 7
	q := mutation.MustUniform(nu, 0.02)
	l := randLandscape(rng.New(2), nu)
	base, _ := NewFmmpOperator(q, l, Right, nil)
	plain, err := PowerIteration(base, PowerOptions{Tol: 1e-11, Start: FitnessStart(l)})
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := PowerIteration(Instrument(base), PowerOptions{Tol: 1e-11, Start: FitnessStart(l)})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Lambda != wrapped.Lambda || plain.Iterations != wrapped.Iterations {
		t.Error("instrumentation changed the computation")
	}
}

func TestMatvecBytes(t *testing.T) {
	// 16 bytes per element per stage, log₂N stages.
	if got := MatvecBytes(1 << 10); got != 16*1024*10 {
		t.Errorf("MatvecBytes(2^10) = %d", got)
	}
	if got := MatvecBytes(1); got != 0 {
		t.Errorf("MatvecBytes(1) = %d, want 0", got)
	}
}
