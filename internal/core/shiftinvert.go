package core

import (
	"fmt"
	"math"

	"repro/internal/device"
	"repro/internal/mutation"
	"repro/internal/vec"
)

// This file realizes the "Towards a Shift-and-Invert Method" outlook of
// Section 3: for the pure mutation matrix Q there is a Θ(N·log₂N) implicit
// product (Q − µI)⁻¹·v = V·(Λ − µI)⁻¹·V·v, which turns inverse iteration
// and Rayleigh quotient iteration into practical algorithms for eigenpairs
// of Q anywhere in the spectrum. (The paper leaves the extension to
// Q·F − µI with general F as future work; so does this package.)

// InverseIterationQ computes the eigenpair of a uniform mutation matrix Q
// closest to the shift mu by inverse iteration with the fast shift-invert
// product. mu must not coincide with an eigenvalue (1−2p)^k.
func InverseIterationQ(q *mutation.Process, mu float64, opts PowerOptions) (PowerResult, error) {
	if _, ok := q.Uniform(); !ok {
		return PowerResult{}, fmt.Errorf("core: InverseIterationQ requires a uniform-rate process")
	}
	n := q.Dim()
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-12
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 10000
	}
	x := device.AllocVector(n)
	if opts.Start != nil {
		if len(opts.Start) != n {
			return PowerResult{}, fmt.Errorf("core: start vector length %d, want %d", len(opts.Start), n)
		}
		copy(x, opts.Start)
	} else {
		vec.Fill(x, 1)
		x[0] = 2 // break symmetry so non-constant eigenvectors are reachable
	}
	vec.Normalize2(x)

	w := device.AllocVector(n)
	res := PowerResult{}
	for iter := 1; iter <= maxIter; iter++ {
		res.Iterations = iter
		// x ← (Q − µI)⁻¹ x, normalized.
		if err := q.ApplyShiftInvert(x, mu); err != nil {
			return res, err
		}
		nrm := vec.Norm2(x)
		if nrm == 0 || math.IsInf(nrm, 0) || math.IsNaN(nrm) {
			return res, fmt.Errorf("core: inverse iteration broke down at step %d", iter)
		}
		vec.Scale(x, 1/nrm)
		// Rayleigh quotient and residual on the original Q.
		copy(w, x)
		q.Apply(w)
		lambda := vec.Dot(x, w)
		var rs float64
		for i, wi := range w {
			r := wi - lambda*x[i]
			rs += r * r
		}
		res.Lambda = lambda
		res.Residual = math.Sqrt(rs)
		if res.Residual <= tol {
			res.Converged = true
			orientPositive(x)
			res.Vector = x
			return res, nil
		}
	}
	orientPositive(x)
	res.Vector = x
	return res, fmt.Errorf("%w after %d inverse iterations (residual %g)",
		ErrNoConvergence, res.Iterations, res.Residual)
}

// RayleighQuotientIterationQ refines an eigenpair of a uniform Q with
// Rayleigh quotient iteration: the shift is updated to the current
// Rayleigh quotient each step, giving cubic local convergence. The shift
// is snapped away from exact eigenvalues (1−2p)^k, where the shifted
// matrix is singular.
func RayleighQuotientIterationQ(q *mutation.Process, start []float64, opts PowerOptions) (PowerResult, error) {
	p, ok := q.Uniform()
	if !ok {
		return PowerResult{}, fmt.Errorf("core: RayleighQuotientIterationQ requires a uniform-rate process")
	}
	n := q.Dim()
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-12
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 100
	}
	if len(start) != n {
		return PowerResult{}, fmt.Errorf("core: start vector length %d, want %d", len(start), n)
	}
	x := vec.Clone(start)
	vec.Normalize2(x)

	w := device.AllocVector(n)
	res := PowerResult{}
	copy(w, x)
	q.Apply(w)
	mu := vec.Dot(x, w)
	for iter := 1; iter <= maxIter; iter++ {
		res.Iterations = iter
		shift := snapAwayFromSpectrum(mu, q.ChainLen(), p)
		if err := q.ApplyShiftInvert(x, shift); err != nil {
			return res, err
		}
		nrm := vec.Norm2(x)
		if nrm == 0 || math.IsInf(nrm, 0) || math.IsNaN(nrm) {
			return res, fmt.Errorf("core: RQI broke down at step %d", iter)
		}
		vec.Scale(x, 1/nrm)
		copy(w, x)
		q.Apply(w)
		mu = vec.Dot(x, w)
		var rs float64
		for i, wi := range w {
			r := wi - mu*x[i]
			rs += r * r
		}
		res.Lambda = mu
		res.Residual = math.Sqrt(rs)
		if res.Residual <= tol {
			res.Converged = true
			orientPositive(x)
			res.Vector = x
			return res, nil
		}
	}
	orientPositive(x)
	res.Vector = x
	return res, fmt.Errorf("%w after %d RQI steps (residual %g)",
		ErrNoConvergence, res.Iterations, res.Residual)
}

// snapAwayFromSpectrum perturbs mu if it sits (numerically) on an
// eigenvalue (1−2p)^k of Q.
func snapAwayFromSpectrum(mu float64, nu int, p float64) float64 {
	base := 1 - 2*p
	lam := 1.0
	for k := 0; k <= nu; k++ {
		if math.Abs(mu-lam) < 1e-14*math.Max(1, math.Abs(lam)) {
			return mu + 1e-10*math.Max(1, math.Abs(lam))
		}
		lam *= base
	}
	return mu
}
