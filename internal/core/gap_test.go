package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dense"
	"repro/internal/landscape"
	"repro/internal/mutation"
	"repro/internal/rng"
)

func denseSpectrum(t *testing.T, q *mutation.Process, l landscape.Landscape) []float64 {
	t.Helper()
	dw, err := NewDenseW(q, l, Symmetric)
	if err != nil {
		t.Fatal(err)
	}
	vals, _, err := dense.JacobiEigen(dw.M, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	return vals
}

func TestSecondEigenpairMatchesDenseSpectrum(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		const nu = 7
		q := mutation.MustUniform(nu, 0.02)
		l := randLandscape(rng.New(seed), nu)
		vals := denseSpectrum(t, q, l)

		op, _ := NewFmmpOperator(q, l, Symmetric, nil)
		first, err := PowerIteration(op, PowerOptions{Tol: 1e-12, Start: FitnessStart(l)})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(first.Lambda-vals[0]) > 1e-9 {
			t.Fatalf("λ₀ = %g, dense %g", first.Lambda, vals[0])
		}
		second, err := SecondEigenpair(op, first.Vector, PowerOptions{Tol: 1e-10})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if math.Abs(second.Lambda-vals[1]) > 1e-7 {
			t.Errorf("seed %d: λ₁ = %.12g, dense %.12g", seed, second.Lambda, vals[1])
		}
		// Orthogonality to the dominant vector.
		var dot float64
		for i := range second.Vector {
			dot += second.Vector[i] * first.Vector[i]
		}
		if math.Abs(dot) > 1e-8 {
			t.Errorf("seed %d: x₁ᵀx₀ = %g", seed, dot)
		}
	}
}

func TestSecondEigenpairValidation(t *testing.T) {
	q := mutation.MustUniform(4, 0.1)
	l, _ := landscape.NewUniform(4, 1)
	op, _ := NewFmmpOperator(q, l, Symmetric, nil)
	if _, err := SecondEigenpair(op, make([]float64, 8), PowerOptions{}); err == nil {
		t.Error("wrong dominant length must be rejected")
	}
	notUnit := make([]float64, 16)
	notUnit[0] = 2
	if _, err := SecondEigenpair(op, notUnit, PowerOptions{}); err == nil {
		t.Error("non-unit dominant vector must be rejected")
	}
	unit := make([]float64, 16)
	unit[0] = 1
	if _, err := SecondEigenpair(op, unit, PowerOptions{Start: unit}); err == nil {
		t.Error("start parallel to dominant must be rejected")
	}
}

func TestEstimateGapAndShiftImprovement(t *testing.T) {
	const nu = 8
	const p = 0.01
	q := mutation.MustUniform(nu, p)
	l := randLandscape(rng.New(5), nu)
	op, _ := NewFmmpOperator(q, l, Symmetric, nil)
	mu := ConservativeShift(q, l)
	gap, err := EstimateGap(op, mu, PowerOptions{Tol: 1e-12, Start: FitnessStart(l)})
	if err != nil {
		t.Fatal(err)
	}
	if !(gap.Rate > 0 && gap.Rate < 1) {
		t.Fatalf("rate %g outside (0,1)", gap.Rate)
	}
	// The positive shift must strictly improve the rate: both λ are
	// positive here, so subtracting µ > 0 shrinks the ratio.
	if gap.ShiftedRate >= gap.Rate {
		t.Errorf("shifted rate %g not better than %g", gap.ShiftedRate, gap.Rate)
	}
	// Cross-check λ₁ against the dense spectrum.
	vals := denseSpectrum(t, q, l)
	if math.Abs(gap.Lambda1-vals[1]) > 1e-7 {
		t.Errorf("λ₁ = %g, dense %g", gap.Lambda1, vals[1])
	}
}

func TestPredictedIterationsMatchMeasured(t *testing.T) {
	// The gap-based prediction must land within a factor ~2 of the real
	// iteration count (start-vector overlap shifts the constant).
	const nu = 9
	const p = 0.015
	q := mutation.MustUniform(nu, p)
	l := randLandscape(rng.New(7), nu)
	op, _ := NewFmmpOperator(q, l, Symmetric, nil)

	gap, err := EstimateGap(op, 0, PowerOptions{Tol: 1e-12, Start: FitnessStart(l)})
	if err != nil {
		t.Fatal(err)
	}
	const tol = 1e-10
	predicted, err := PredictIterations(gap.Rate, tol)
	if err != nil {
		t.Fatal(err)
	}
	measured, err := PowerIteration(op, PowerOptions{Tol: tol, Start: FitnessStart(l)})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := predicted/3, predicted*3+10
	if measured.Iterations < lo || measured.Iterations > hi {
		t.Errorf("measured %d iterations, predicted %d (accepted [%d, %d], rate %g)",
			measured.Iterations, predicted, lo, hi, gap.Rate)
	}
	t.Logf("rate %.4f: predicted %d, measured %d", gap.Rate, predicted, measured.Iterations)
}

func TestPredictIterationsValidation(t *testing.T) {
	if _, err := PredictIterations(1.5, 0.1); err == nil {
		t.Error("rate ≥ 1 must be rejected")
	}
	if _, err := PredictIterations(0.5, 2); err == nil {
		t.Error("eps ≥ 1 must be rejected")
	}
	n, err := PredictIterations(0.5, 0.25)
	if err != nil || n != 2 {
		t.Errorf("PredictIterations(0.5, 0.25) = %d, %v; want 2", n, err)
	}
}

func TestGapClosesNearThreshold(t *testing.T) {
	// The paper's Figure 1 phenomenon in spectral terms: the gap of the
	// single-peak problem shrinks as p approaches p_max.
	const nu = 8
	l, _ := landscape.NewSinglePeak(nu, 2, 1)
	rate := func(p float64) float64 {
		q := mutation.MustUniform(nu, p)
		op, _ := NewFmmpOperator(q, l, Symmetric, nil)
		gap, err := EstimateGap(op, 0, PowerOptions{Tol: 1e-11, Start: FitnessStart(l)})
		if err != nil {
			t.Fatal(err)
		}
		return gap.Rate
	}
	far := rate(0.01)
	near := rate(0.07) // p_max ≈ 0.085 at ν = 8
	if near <= far {
		t.Errorf("rate near threshold (%g) should exceed rate far below it (%g)", near, far)
	}
}

// diagOp is a diagonal (hence symmetric) operator with a fully known
// spectrum — the edge-case rig for the gap estimator.
type diagOp struct{ d []float64 }

func (o diagOp) Dim() int { return len(o.d) }
func (o diagOp) Apply(dst, src []float64) {
	for i := range dst {
		dst[i] = o.d[i] * src[i]
	}
}

func TestEstimateGapEdgeCases(t *testing.T) {
	pad := func(d []float64, n int) []float64 {
		for i := len(d); i < n; i++ {
			d = append(d, 0.1/float64(i+1))
		}
		return d
	}
	cases := []struct {
		name       string
		d          []float64
		opts       PowerOptions
		wantErr    bool
		wantReason string
	}{
		{
			name: "well_separated",
			d:    pad([]float64{1, 0.5}, 16),
			opts: PowerOptions{Tol: 1e-11},
		},
		{
			name: "modest_gap",
			d:    pad([]float64{1, 0.99}, 16),
			opts: PowerOptions{Tol: 1e-11},
		},
		{
			name:       "near_degenerate",
			d:          pad([]float64{1, 1 - 1e-15}, 16),
			opts:       PowerOptions{Tol: 1e-11},
			wantErr:    true,
			wantReason: "near_degenerate",
		},
		{
			name: "unconverged_ritz",
			// An unreachable tolerance stalls the deflated solve on the
			// near-degenerate pair: the Ritz value never resolves λ₁.
			d:          pad([]float64{1, 1 - 1e-15}, 16),
			opts:       PowerOptions{Tol: 1e-30, StallChecks: 20},
			wantErr:    true,
			wantReason: "unconverged_ritz",
		},
		{
			name: "stagnated_but_resolved",
			// Stagnation alone must NOT flag the gap when the separation
			// dwarfs the attained residual.
			d:    pad([]float64{1, 0.5}, 16),
			opts: PowerOptions{Tol: 1e-30, StallChecks: 20},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g, err := EstimateGap(diagOp{c.d}, 0, c.opts)
			if !c.wantErr {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if math.Abs(g.Lambda0-c.d[0]) > 1e-9 || math.Abs(g.Lambda1-c.d[1]) > 1e-6 {
					t.Fatalf("eigenvalues (%.12g, %.12g), want (%.12g, %.12g)",
						g.Lambda0, g.Lambda1, c.d[0], c.d[1])
				}
				return
			}
			if !errors.Is(err, ErrGapUnresolved) {
				t.Fatalf("got %v, want ErrGapUnresolved", err)
			}
			var ge *GapUnresolvedError
			if !errors.As(err, &ge) {
				t.Fatalf("error %T does not unwrap to *GapUnresolvedError", err)
			}
			if ge.Reason != c.wantReason {
				t.Fatalf("reason %q, want %q", ge.Reason, c.wantReason)
			}
			if g == nil || math.Abs(g.Lambda0-c.d[0]) > 1e-9 {
				t.Fatal("partial SpectralGap with λ₀ must still be returned")
			}
		})
	}
}

func TestRitzGapDegenerateKrylovSpace(t *testing.T) {
	// The identity's Krylov space closes after one step: no second Ritz
	// value exists and RitzGap must say so, not fabricate a zero gap.
	d := make([]float64, 8)
	for i := range d {
		d[i] = 1
	}
	_, _, err := RitzGap(diagOp{d}, 8, nil, nil)
	if !errors.Is(err, ErrGapUnresolved) {
		t.Fatalf("got %v, want ErrGapUnresolved", err)
	}
}

func TestRitzGapValidation(t *testing.T) {
	d := []float64{1, 0.5, 0.25, 0.125}
	if _, _, err := RitzGap(diagOp{d}, 1, nil, nil); err == nil {
		t.Error("k < 2 must be rejected")
	}
	if _, _, err := RitzGap(diagOp{d}, 4, []float64{1, 2}, nil); err == nil {
		t.Error("mis-sized start must be rejected")
	}
	theta0, theta1, err := RitzGap(diagOp{d}, 4, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(theta0-1) > 1e-10 || math.Abs(theta1-0.5) > 1e-10 {
		t.Errorf("full-dimension probe is exact: got (%.12g, %.12g), want (1, 0.5)", theta0, theta1)
	}
}
