package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dense"
	"repro/internal/device"
	"repro/internal/span"
	"repro/internal/vec"
)

// Shift-invert Lanczos: the deep gear of the adaptive critical-window
// engine. Where the plain and Chebyshev iterations slow down as the gap
// λ₀ − λ₁ collapses near the error threshold, shift-invert converges at
// the rate of the *transformed* gap: Lanczos runs on B = (µI − S)⁻¹ whose
// dominant eigenvalue 1/(µ − λ₀) towers over 1/(µ − λ₁) whenever the
// shift µ sits just above λ₀. The catch is that each outer step needs a
// linear solve with (µI − S); for a general fitness landscape there is no
// fast direct inverse (the paper's closed form covers only pure Q), so we
// use inner conjugate gradients — valid because S is symmetric and µ > λ₀
// makes (µI − S) positive definite.
//
// Shift placement is the whole game:
//   - µ must exceed λ₀ (else (µI − S) is indefinite; CG detects this as
//     non-positive curvature and the solve fails fast with ErrBadShift so
//     the caller can raise µ).
//   - µ − λ₀ should be small against λ₀ − λ₁ for a large transformed gap,
//     but the inner CG condition number is ≈ (µ − λ_min)/(µ − λ₀), so an
//     overly tight shift trades outer steps for inner ones.
//
// On a monotone p-sweep λ₀(p) is decreasing, so the previous point's λ₀ is
// an automatic upper shift for the next point — the warm-start chain
// carries it (see AdaptiveOptions.State).

// ErrBadShift reports a shift-invert solve whose shift µ does not lie
// above the operator's spectrum: (µI − S) is not positive definite, which
// the inner CG detects as non-positive curvature. Retry with a larger µ
// (e.g. UpperBoundLambda).
var ErrBadShift = errors.New("core: shift µ is not above the dominant eigenvalue (µI − S not positive definite)")

// ShiftInvertOptions configures the shift-invert Lanczos solver.
type ShiftInvertOptions struct {
	// Tol is the residual threshold on ‖S·x − λ·x‖₂ of the *original*
	// operator (not the transformed one). Default 1e-13.
	Tol float64
	// Shift is the spectral shift µ, required to satisfy µ > λ₀. Mandatory
	// (there is no safe default: too low is indefinite, too high is slow).
	Shift float64
	// BasisSize is the outer Krylov basis length per restart (default 8 —
	// the transformed spectrum is so skewed that tiny bases converge).
	BasisSize int
	// MaxRestarts caps the outer restart cycles (default 40).
	MaxRestarts int
	// InnerTol is the relative residual threshold of the inner CG solves.
	// Default: two decades below the outer Tol, floored at 1e-15 — the
	// attainable outer residual is limited by the inner solve accuracy.
	InnerTol float64
	// InnerMaxIter caps each inner CG solve. Default 10·√N + 100.
	InnerMaxIter int
	// Start is the starting vector; copied, not mutated. Default: uniform.
	// May alias the Work iterate (warm-start continuation).
	Start []float64
	// Dev selects device-parallel BLAS-1 operations; nil runs serially.
	Dev *device.Device
	// Observer, when non-nil, receives one Step per outer restart plus
	// lifecycle events; Step's iter argument counts operator applications.
	Observer Observer
	// Work supplies reusable scratch (basis + CG vectors); the returned
	// Vector aliases its Ritz buffer. Nil allocates fresh scratch.
	Work *ShiftInvertWork
}

// ShiftInvertWork is the reusable scratch of a shift-invert Lanczos solve:
// the outer Krylov basis and tridiagonal coefficients plus the inner CG
// vectors and the Ritz-vector buffer.
type ShiftInvertWork struct {
	kry KrylovWork
	// inner CG scratch: residual, search direction, S·p product.
	r, p, ap []float64
	// q is the Ritz/iterate buffer the result vector aliases.
	q []float64
}

// NewShiftInvertWork returns empty scratch; buffers size lazily.
func NewShiftInvertWork(n int) *ShiftInvertWork {
	_ = n
	return &ShiftInvertWork{}
}

func (sw *ShiftInvertWork) vectors(n int) (r, p, ap, q []float64) {
	if len(sw.r) != n {
		sw.r = device.AllocVector(n)
	}
	if len(sw.p) != n {
		sw.p = device.AllocVector(n)
	}
	if len(sw.ap) != n {
		sw.ap = device.AllocVector(n)
	}
	if len(sw.q) != n {
		sw.q = device.AllocVector(n)
	}
	return sw.r, sw.p, sw.ap, sw.q
}

// ShiftInvertResult is the outcome of a shift-invert Lanczos solve.
type ShiftInvertResult struct {
	// Lambda is the dominant eigenvalue of the original operator,
	// recovered as µ − 1/θ from the transformed Ritz value θ.
	Lambda float64
	// Vector is the eigenvector estimate, unit 2-norm, non-negative
	// orientation. Aliases Work's Ritz buffer when Work was supplied.
	Vector []float64
	// MatVecs counts applications of the original operator (the inner CG
	// iterations dominate; outer steps add one residual check each).
	MatVecs int
	// Restarts is the number of outer Lanczos restart cycles.
	Restarts int
	// InnerIters is the total inner CG iteration count.
	InnerIters int
	// Residual is the final ‖S·x − λ·x‖₂ on the original operator.
	Residual float64
	// Converged reports whether Residual ≤ Tol was reached.
	Converged bool
	// Mu echoes the shift used.
	Mu float64
}

// ShiftInvertLanczos computes the dominant eigenpair of the *symmetric*
// operator op by restarted Lanczos on (µI − S)⁻¹ with inner CG solves.
// The residual and Lambda refer to the original operator. It returns
// ErrBadShift (fast, before burning the budget) when µ ≤ λ₀, and the
// partial result with ErrNoConvergence when restarts run out.
func ShiftInvertLanczos(op Operator, opts ShiftInvertOptions) (ShiftInvertResult, error) {
	n := op.Dim()
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-13
	}
	mu := opts.Shift
	if math.IsNaN(mu) || math.IsInf(mu, 0) || mu == 0 {
		return ShiftInvertResult{}, fmt.Errorf("core: shift-invert needs an explicit shift µ > λ₀, got %g", mu)
	}
	m := opts.BasisSize
	if m <= 0 {
		m = 8
	}
	if m > n {
		m = n
	}
	maxRestarts := opts.MaxRestarts
	if maxRestarts <= 0 {
		maxRestarts = 40
	}
	innerTol := opts.InnerTol
	if innerTol <= 0 {
		innerTol = math.Max(tol*1e-2, 1e-15)
	}
	innerMaxIter := opts.InnerMaxIter
	if innerMaxIter <= 0 {
		innerMaxIter = 10*int(math.Sqrt(float64(n))) + 100
	}
	dev := opts.Dev

	work := opts.Work
	if work == nil {
		work = NewShiftInvertWork(n)
	}
	cgR, cgP, cgAp, q := work.vectors(n)
	basis, alpha, beta, w := work.kry.krylov(n, m)

	if opts.Start != nil {
		if len(opts.Start) != n {
			return ShiftInvertResult{}, fmt.Errorf("core: start vector length %d, want %d", len(opts.Start), n)
		}
		copy(q, opts.Start) // self-copy when Start aliases the scratch buffer
	} else {
		vec.Fill(q, 1)
	}
	nrm := norm2(dev, q)
	if nrm == 0 {
		return ShiftInvertResult{}, errors.New("core: start vector is zero")
	}
	scale(dev, q, 1/nrm)

	sh := solveObs.Load()
	sr := span.Installed()
	var sp span.Handle
	if sr != nil {
		sp = sr.Begin(span.LayerCore, SolveKindShiftInvert)
	}
	if sh != nil {
		sh.o.SolveStart(SolveKindShiftInvert, n)
	}
	if opts.Observer != nil {
		notifyMethod(opts.Observer, SolveKindShiftInvert)
		opts.Observer.Event(EventStart, 0, mu, 0)
	}

	res := ShiftInvertResult{Vector: q, Mu: mu}
	lastMatVecs := 0
	for restart := 0; restart < maxRestarts; restart++ {
		res.Restarts = restart + 1
		copyInto(dev, basis[0], q)
		k := 0
		badShift := false
		for j := 0; j < m; j++ {
			// One outer step: w ← (µI − S)⁻¹ · basis[j] by inner CG.
			ph := beginPhase(sr, PhaseInnerSolve)
			ok := innerCG(op, dev, w, basis[j], mu, innerTol, innerMaxIter, cgR, cgP, cgAp, &res.MatVecs, &res.InnerIters)
			span.End(ph, int64(res.Restarts), int64(j))
			if !ok {
				badShift = true
				break
			}
			alpha[j] = dot(dev, basis[j], w)
			axpyInto(dev, -alpha[j], basis[j], w)
			if j > 0 {
				axpyInto(dev, -beta[j-1], basis[j-1], w)
			}
			// Full reorthogonalization of the small outer basis.
			for t := 0; t <= j; t++ {
				c := dot(dev, basis[t], w)
				axpyInto(dev, -c, basis[t], w)
			}
			k = j + 1
			if j+1 < m {
				b := norm2(dev, w)
				if b < 1e-300 {
					break // invariant subspace of the transformed operator
				}
				beta[j] = b
				inv := 1 / b
				if dev != nil {
					bd, wd := basis[j+1], w
					dev.LaunchRange(n, func(lo, hi int) {
						for i := lo; i < hi; i++ {
							bd[i] = wd[i] * inv
						}
					})
				} else {
					for i := range w {
						basis[j+1][i] = w[i] * inv
					}
				}
			}
		}
		if badShift {
			siDone(sh, sp, opts.Observer, EventBreakdown, n, res.MatVecs, res.Lambda, res.Residual)
			return res, fmt.Errorf("%w: µ = %g", ErrBadShift, mu)
		}
		if k == 0 {
			siDone(sh, sp, opts.Observer, EventBreakdown, n, res.MatVecs, res.Lambda, res.Residual)
			return res, errors.New("core: shift-invert Lanczos built an empty basis")
		}
		// Dominant Ritz pair of the k×k tridiagonal (of the transformed
		// operator; its top eigenvalue θ maps back as λ = µ − 1/θ).
		ph := beginPhase(sr, PhaseTridiag)
		vals, vecs, err := tridiagEigenpairs(alpha[:k], beta[:max(k-1, 0)])
		span.End(ph, int64(res.Restarts), int64(k))
		if err != nil {
			siDone(sh, sp, opts.Observer, EventBreakdown, n, res.MatVecs, res.Lambda, res.Residual)
			return res, err
		}
		theta := vals[0]
		if theta <= 0 {
			// The transformed operator is SPD when µ > λ₀; a non-positive
			// dominant Ritz value means the shift is unusable.
			siDone(sh, sp, opts.Observer, EventBreakdown, n, res.MatVecs, res.Lambda, res.Residual)
			return res, fmt.Errorf("%w: transformed Ritz value θ = %g ≤ 0 at µ = %g", ErrBadShift, theta, mu)
		}
		res.Lambda = mu - 1/theta
		// Ritz vector x = Σ_j vecs[j][0]·basis[j] (built in q, normalized).
		vec.Fill(q, 0)
		for j := 0; j < k; j++ {
			axpyInto(dev, vecs[j], basis[j], q)
		}
		nrm = norm2(dev, q)
		if nrm == 0 || math.IsNaN(nrm) || math.IsInf(nrm, 0) {
			siDone(sh, sp, opts.Observer, EventBreakdown, n, res.MatVecs, res.Lambda, res.Residual)
			return res, fmt.Errorf("core: shift-invert Ritz vector collapsed at restart %d", res.Restarts)
		}
		scale(dev, q, 1/nrm)
		// Explicit residual on the original operator.
		ph = beginPhase(sr, PhaseResidual)
		op.Apply(w, q)
		res.MatVecs++
		lambda := dot(dev, q, w) // Rayleigh quotient beats µ − 1/θ once close
		res.Lambda = lambda
		r := residual(dev, w, q, lambda)
		span.End(ph, int64(res.Restarts), 0)
		res.Residual = r
		if sh != nil {
			sh.o.SolveStep(SolveKindShiftInvert, res.MatVecs-lastMatVecs)
		}
		lastMatVecs = res.MatVecs
		if opts.Observer != nil {
			opts.Observer.Step(res.MatVecs, lambda, r)
		}
		if r <= tol {
			res.Converged = true
			orientPositive(q)
			res.Vector = q
			siDone(sh, sp, opts.Observer, EventConverged, n, res.MatVecs, lambda, r)
			return res, nil
		}
	}
	orientPositive(q)
	res.Vector = q
	siDone(sh, sp, opts.Observer, EventBudgetExhausted, n, res.MatVecs, res.Lambda, res.Residual)
	return res, &ConvergenceError{
		Reason: ErrNoConvergence, Method: SolveKindShiftInvert,
		Iterations: res.MatVecs, Residual: res.Residual, BestResidual: res.Residual,
		Shift: mu, Tol: tol,
	}
}

func siDone(sh *solveHook, sp span.Handle, obs Observer, outcome string, dim, iters int, lambda, residual float64) {
	powerDone(sh, sp, obs, SolveKindShiftInvert, outcome, dim, iters, lambda, residual)
}

// innerCG solves (µI − S)·y = rhs to relative tolerance rtol by conjugate
// gradients, writing the solution into y (zero initial guess — rhs is a
// fresh unit Lanczos direction each call, so there is no better seed). It
// returns false when it encounters non-positive curvature, the symptom of
// µ ≤ λ₀. matvecs/inner are incremented per S application / CG step.
func innerCG(op Operator, dev *device.Device, y, rhs []float64, mu, rtol float64, maxIter int, r, p, ap []float64, matvecs, inner *int) bool {
	n := len(y)
	vec.Fill(y, 0)
	copyInto(dev, r, rhs) // r = rhs − (µI−S)·0
	copyInto(dev, p, r)
	rs := dot(dev, r, r)
	bnorm := math.Sqrt(rs)
	if bnorm == 0 {
		return true
	}
	threshold := rtol * bnorm
	for it := 0; it < maxIter; it++ {
		// ap ← (µI − S)·p
		op.Apply(ap, p)
		*matvecs++
		*inner++
		if dev != nil {
			apd, pd := ap, p
			dev.LaunchRange(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					apd[i] = mu*pd[i] - apd[i]
				}
			})
		} else {
			for i := range ap {
				ap[i] = mu*p[i] - ap[i]
			}
		}
		curv := dot(dev, p, ap)
		if curv <= 0 || math.IsNaN(curv) {
			return false // (µI − S) not positive definite along p: µ ≤ λ₀
		}
		a := rs / curv
		axpyInto(dev, a, p, y)
		axpyInto(dev, -a, ap, r)
		rsNew := dot(dev, r, r)
		if math.Sqrt(rsNew) <= threshold {
			return true
		}
		b := rsNew / rs
		rs = rsNew
		// p ← r + b·p
		if dev != nil {
			pd, rd := p, r
			dev.LaunchRange(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					pd[i] = rd[i] + b*pd[i]
				}
			})
		} else {
			for i := range p {
				p[i] = r[i] + b*p[i]
			}
		}
	}
	// Budget exhausted: accept the partial solve — the outer Lanczos only
	// needs an approximate inverse direction, and the explicit residual on
	// the original operator keeps correctness honest.
	return true
}

// tridiagEigenpairs returns the eigenvalues (descending) of the symmetric
// tridiagonal matrix and the components of the dominant eigenvector.
func tridiagEigenpairs(alpha, beta []float64) ([]float64, []float64, error) {
	k := len(alpha)
	t := dense.NewMatrix(k, k)
	for j := 0; j < k; j++ {
		t.Set(j, j, alpha[j])
		if j+1 < k {
			t.Set(j, j+1, beta[j])
			t.Set(j+1, j, beta[j])
		}
	}
	vals, vecs, err := dense.JacobiEigen(t, 1e-15)
	if err != nil {
		return nil, nil, fmt.Errorf("core: tridiagonal eigensolve failed: %w", err)
	}
	top := make([]float64, k)
	for j := 0; j < k; j++ {
		top[j] = vecs.At(j, 0)
	}
	return vals, top, nil
}
