package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dense"
	"repro/internal/device"
	"repro/internal/landscape"
	"repro/internal/mutation"
	"repro/internal/rng"
	"repro/internal/vec"
)

func solveDenseReference(t *testing.T, q *mutation.Process, l landscape.Landscape) (float64, []float64) {
	t.Helper()
	dw, err := NewDenseW(q, l, Right)
	if err != nil {
		t.Fatal(err)
	}
	lam, x, _, err := dense.Dominant(dw.M, &dense.DominantOptions{Tol: 1e-13, MaxIter: 2000000})
	if err != nil {
		t.Fatal(err)
	}
	return lam, x
}

func TestPowerIterationMatchesDenseReference(t *testing.T) {
	r := rng.New(1)
	for _, nu := range []int{3, 6, 9} {
		q := mutation.MustUniform(nu, 0.01)
		l := randLandscape(r, nu)
		wantLam, wantX := solveDenseReference(t, q, l)

		op, err := NewFmmpOperator(q, l, Right, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := PowerIteration(op, PowerOptions{Tol: 1e-12, Start: FitnessStart(l)})
		if err != nil {
			t.Fatalf("ν=%d: %v", nu, err)
		}
		if !res.Converged || res.Residual > 1e-12 {
			t.Errorf("ν=%d: not converged (residual %g)", nu, res.Residual)
		}
		if math.Abs(res.Lambda-wantLam) > 1e-9 {
			t.Errorf("ν=%d: λ = %.15g, want %.15g", nu, res.Lambda, wantLam)
		}
		if d := vec.DistInf(res.Vector, wantX); d > 1e-7 {
			t.Errorf("ν=%d: eigenvector deviates by %g", nu, d)
		}
	}
}

func TestPowerIterationDeviceMatchesSerial(t *testing.T) {
	r := rng.New(2)
	const nu = 10
	q := mutation.MustUniform(nu, 0.01)
	l := randLandscape(r, nu)
	dev := device.New(4, device.WithGrain(64))

	serialOp, _ := NewFmmpOperator(q, l, Right, nil)
	serialRes, err := PowerIteration(serialOp, PowerOptions{Tol: 1e-12, Start: FitnessStart(l)})
	if err != nil {
		t.Fatal(err)
	}
	devOp, _ := NewFmmpOperator(q, l, Right, dev)
	devRes, err := PowerIteration(devOp, PowerOptions{Tol: 1e-12, Start: FitnessStart(l), Dev: dev})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(serialRes.Lambda-devRes.Lambda) > 1e-11 {
		t.Errorf("λ differs: serial %.15g device %.15g", serialRes.Lambda, devRes.Lambda)
	}
	if d := vec.DistInf(serialRes.Vector, devRes.Vector); d > 1e-9 {
		t.Errorf("eigenvectors differ by %g", d)
	}
}

func TestPowerIterationPerronProperties(t *testing.T) {
	// The computed eigenvector must be (numerically) non-negative and the
	// eigenvalue within the paper's bounds (1−2p)^ν·f_min ≤ λ ≤ f_max.
	r := rng.New(3)
	const nu = 8
	const p = 0.02
	q := mutation.MustUniform(nu, p)
	l := randLandscape(r, nu)
	op, _ := NewFmmpOperator(q, l, Right, nil)
	res, err := PowerIteration(op, PowerOptions{Tol: 1e-12, Start: FitnessStart(l)})
	if err != nil {
		t.Fatal(err)
	}
	if !vec.AllNonNegative(res.Vector, 1e-10) {
		t.Error("Perron vector has significant negative entries")
	}
	lo := ConservativeShift(q, l)
	hi := UpperBoundLambda(l)
	if res.Lambda < lo || res.Lambda > hi {
		t.Errorf("λ = %g outside [%g, %g]", res.Lambda, lo, hi)
	}
}

func TestShiftReducesIterations(t *testing.T) {
	// Section 3: the conservative shift µ = (1−2p)^ν·f_min reduces the
	// iteration count by "about ten percent and more" on random landscapes.
	r := rng.New(4)
	totalPlain, totalShifted := 0, 0
	for trial := 0; trial < 5; trial++ {
		const nu = 10
		const p = 0.01
		q := mutation.MustUniform(nu, p)
		l, err := landscape.NewRandom(nu, 5, 1, r.Uint64())
		if err != nil {
			t.Fatal(err)
		}
		op, _ := NewFmmpOperator(q, l, Right, nil)
		plain, err := PowerIteration(op, PowerOptions{Tol: 1e-10, Start: FitnessStart(l)})
		if err != nil {
			t.Fatal(err)
		}
		mu := ConservativeShift(q, l)
		if mu <= 0 {
			t.Fatal("conservative shift must be positive for uniform processes")
		}
		shifted, err := PowerIteration(op, PowerOptions{Tol: 1e-10, Start: FitnessStart(l), Shift: mu})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(plain.Lambda-shifted.Lambda) > 1e-8 {
			t.Fatalf("shifted iteration converged to a different eigenvalue: %g vs %g",
				shifted.Lambda, plain.Lambda)
		}
		totalPlain += plain.Iterations
		totalShifted += shifted.Iterations
	}
	if totalShifted >= totalPlain {
		t.Errorf("shift did not reduce iterations: %d (shifted) vs %d (plain)", totalShifted, totalPlain)
	}
	t.Logf("iterations: plain %d, shifted %d (%.1f%% reduction)",
		totalPlain, totalShifted, 100*(1-float64(totalShifted)/float64(totalPlain)))
}

func TestConservativeShiftFormula(t *testing.T) {
	q := mutation.MustUniform(10, 0.01)
	l, _ := landscape.NewSinglePeak(10, 2, 1)
	want := math.Pow(0.98, 10) * 1.0
	if got := ConservativeShift(q, l); math.Abs(got-want) > 1e-15 {
		t.Errorf("shift = %g, want %g", got, want)
	}
	// Non-uniform processes get no shift.
	ps, err := mutation.NewPerSite([]mutation.Factor2{
		{A: 0.9, B: 0.2, C: 0.1, D: 0.8}, {A: 0.8, B: 0.1, C: 0.2, D: 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	l2, _ := landscape.NewUniform(2, 1)
	if got := ConservativeShift(ps, l2); got != 0 {
		t.Errorf("non-uniform shift = %g, want 0", got)
	}
}

func TestShiftIsBelowSmallestEigenvalue(t *testing.T) {
	// λ_min(W) ≥ (1−2p)^ν·f_min: verify on small dense symmetric forms.
	r := rng.New(5)
	for trial := 0; trial < 10; trial++ {
		nu := 2 + int(r.Uint64n(5))
		p := 0.001 + 0.4*r.Float64()
		q := mutation.MustUniform(nu, p)
		l := randLandscape(r, nu)
		dw, err := NewDenseW(q, l, Symmetric)
		if err != nil {
			t.Fatal(err)
		}
		vals, _, err := dense.JacobiEigen(dw.M, 1e-14)
		if err != nil {
			t.Fatal(err)
		}
		mu := ConservativeShift(q, l)
		lamMin := vals[len(vals)-1]
		if lamMin < mu*(1-1e-10) {
			t.Errorf("λ_min = %g < µ = %g (ν=%d, p=%g)", lamMin, mu, nu, p)
		}
	}
}

func TestUniformLimits(t *testing.T) {
	// Equal fitness ⇒ W is a positive multiple of a bistochastic matrix
	// and the quasispecies is the uniform distribution, for every p.
	for _, p := range []float64{0.01, 0.25, 0.5} {
		const nu = 6
		q := mutation.MustUniform(nu, p)
		l, _ := landscape.NewUniform(nu, 3)
		op, _ := NewFmmpOperator(q, l, Right, nil)
		res, err := PowerIteration(op, PowerOptions{Tol: 1e-13})
		if err != nil {
			t.Fatalf("p=%g: %v", p, err)
		}
		// λ must equal the common fitness value.
		if math.Abs(res.Lambda-3) > 1e-10 {
			t.Errorf("p=%g: λ = %g, want 3", p, res.Lambda)
		}
		want := 1 / math.Sqrt(float64(q.Dim()))
		for i, v := range res.Vector {
			if math.Abs(v-want) > 1e-9 {
				t.Fatalf("p=%g: x[%d] = %g, want uniform %g", p, i, v, want)
			}
		}
	}

	// p = ½ ⇒ random replication: uniform distribution for any landscape.
	const nu = 6
	q := mutation.MustUniform(nu, 0.5)
	l := randLandscape(rng.New(6), nu)
	op, _ := NewFmmpOperator(q, l, Right, nil)
	res, err := PowerIteration(op, PowerOptions{Tol: 1e-13, Start: FitnessStart(l)})
	if err != nil {
		t.Fatal(err)
	}
	x := vec.Clone(res.Vector)
	if err := Concentrations(x); err != nil {
		t.Fatal(err)
	}
	wantC := 1 / float64(q.Dim())
	for i, v := range x {
		if math.Abs(v-wantC) > 1e-9 {
			t.Fatalf("p=1/2: concentration[%d] = %g, want uniform %g", i, v, wantC)
		}
	}
}

func TestPowerIterationMonitorAbort(t *testing.T) {
	q := mutation.MustUniform(8, 0.01)
	l := randLandscape(rng.New(7), 8)
	op, _ := NewFmmpOperator(q, l, Right, nil)
	calls := 0
	_, err := PowerIteration(op, PowerOptions{
		Tol:   1e-15,
		Start: FitnessStart(l),
		Monitor: func(iter int, lambda, residual float64) bool {
			calls++
			return calls < 3
		},
	})
	if !errors.Is(err, ErrNoConvergence) {
		t.Errorf("err = %v, want ErrNoConvergence from monitor abort", err)
	}
	if calls != 3 {
		t.Errorf("monitor called %d times, want 3", calls)
	}
}

func TestPowerIterationMaxIterExceeded(t *testing.T) {
	q := mutation.MustUniform(8, 0.01)
	l := randLandscape(rng.New(8), 8)
	op, _ := NewFmmpOperator(q, l, Right, nil)
	res, err := PowerIteration(op, PowerOptions{Tol: 1e-16, MaxIter: 3, Start: FitnessStart(l)})
	if !errors.Is(err, ErrNoConvergence) {
		t.Errorf("err = %v, want ErrNoConvergence", err)
	}
	if res.Iterations != 3 || res.Converged {
		t.Errorf("partial result: iters=%d converged=%v", res.Iterations, res.Converged)
	}
	if res.Vector == nil || res.Lambda == 0 {
		t.Error("partial result must still carry the current estimate")
	}
}

func TestPowerIterationBadStart(t *testing.T) {
	q := mutation.MustUniform(4, 0.01)
	l, _ := landscape.NewUniform(4, 1)
	op, _ := NewFmmpOperator(q, l, Right, nil)
	if _, err := PowerIteration(op, PowerOptions{Start: make([]float64, 5)}); err == nil {
		t.Error("wrong start length must error")
	}
	if _, err := PowerIteration(op, PowerOptions{Start: make([]float64, 16)}); err == nil {
		t.Error("zero start vector must error")
	}
}

func TestPowerIterationCheckEvery(t *testing.T) {
	q := mutation.MustUniform(8, 0.01)
	l := randLandscape(rng.New(9), 8)
	op, _ := NewFmmpOperator(q, l, Right, nil)
	checks := 0
	res, err := PowerIteration(op, PowerOptions{
		Tol: 1e-11, Start: FitnessStart(l), CheckEvery: 10,
		Monitor: func(int, float64, float64) bool { checks++; return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations%10 != 0 {
		t.Errorf("with CheckEvery=10 convergence can only be observed on multiples of 10, got %d", res.Iterations)
	}
	if checks != res.Iterations/10 {
		t.Errorf("monitor called %d times for %d iterations", checks, res.Iterations)
	}
}

func TestFitnessStart(t *testing.T) {
	l, _ := landscape.NewSinglePeak(4, 2, 1)
	s := FitnessStart(l)
	if math.Abs(vec.Sum(s)-1) > 1e-14 {
		t.Error("start vector must have unit 1-norm")
	}
	if s[0] <= s[1] {
		t.Error("start vector must reflect the landscape's shape")
	}
}

func TestConcentrations(t *testing.T) {
	x := []float64{0.3, -1e-14, 0.7, 0.5}
	if err := Concentrations(x); err != nil {
		t.Fatal(err)
	}
	if math.Abs(vec.Sum(x)-1) > 1e-14 {
		t.Error("concentrations must sum to 1")
	}
	if x[1] != 0 {
		t.Error("tiny negatives must clamp to zero")
	}
	bad := []float64{1, -0.5}
	if err := Concentrations(bad); err == nil {
		t.Error("significant negatives must error")
	}
	if err := Concentrations([]float64{0, 0}); err == nil {
		t.Error("zero vector must error")
	}
}

func TestClassConcentrations(t *testing.T) {
	const nu = 3
	x := make([]float64, 8)
	for i := range x {
		x[i] = 0.125
	}
	gamma, err := ClassConcentrations(nu, x)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform distribution: [Γk] = C(ν,k)/N.
	want := []float64{0.125, 0.375, 0.375, 0.125}
	for k := range want {
		if math.Abs(gamma[k]-want[k]) > 1e-14 {
			t.Errorf("[Γ%d] = %g, want %g", k, gamma[k], want[k])
		}
	}
	if _, err := ClassConcentrations(4, x); err == nil {
		t.Error("dimension mismatch must error")
	}
}

func TestClassConcentrationsAbout(t *testing.T) {
	const nu = 3
	x := []float64{1, 0, 0, 0, 0, 0, 0, 0}
	center := uint64(0b101)
	gamma, err := ClassConcentrationsAbout(nu, x, center)
	if err != nil {
		t.Fatal(err)
	}
	// All mass at sequence 0, which is at distance 2 from 0b101.
	for k, g := range gamma {
		want := 0.0
		if k == 2 {
			want = 1
		}
		if math.Abs(g-want) > 1e-15 {
			t.Errorf("[Γ%d] = %g, want %g", k, g, want)
		}
	}
	if _, err := ClassConcentrationsAbout(nu, x, 99); err == nil {
		t.Error("out-of-space center must error")
	}
}

func TestPowerIterationNonUniformProcess(t *testing.T) {
	// The general per-site model solves through the same pipeline
	// (Section 2.2) — verify against the dense reference.
	r := rng.New(12)
	const nu = 6
	factors := make([]mutation.Factor2, nu)
	for i := range factors {
		c0 := 0.02 + 0.1*r.Float64()
		c1 := 0.02 + 0.1*r.Float64()
		factors[i] = mutation.Factor2{A: 1 - c0, B: c1, C: c0, D: 1 - c1}
	}
	q, err := mutation.NewPerSite(factors)
	if err != nil {
		t.Fatal(err)
	}
	l := randLandscape(r, nu)
	dw, err := NewDenseW(q, l, Right)
	if err != nil {
		t.Fatal(err)
	}
	wantLam, wantX, _, err := dense.Dominant(dw.M, &dense.DominantOptions{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	op, _ := NewFmmpOperator(q, l, Right, nil)
	res, err := PowerIteration(op, PowerOptions{Tol: 1e-12, Start: FitnessStart(l)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Lambda-wantLam) > 1e-9 {
		t.Errorf("λ = %g, want %g", res.Lambda, wantLam)
	}
	if d := vec.DistInf(res.Vector, wantX); d > 1e-7 {
		t.Errorf("eigenvector deviates by %g", d)
	}
}
