package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/landscape"
	"repro/internal/mutation"
	"repro/internal/rng"
)

func TestStagnationDetected(t *testing.T) {
	// An unattainable tolerance must terminate via ErrStagnated long
	// before the iteration budget, with a near-machine-precision result.
	const nu = 10
	q := mutation.MustUniform(nu, 0.01)
	l := randLandscape(rng.New(1), nu)
	op, _ := NewFmmpOperator(q, l, Right, nil)
	res, err := PowerIteration(op, PowerOptions{
		Tol: 1e-30, MaxIter: 100000, Start: FitnessStart(l),
	})
	if !errors.Is(err, ErrStagnated) {
		t.Fatalf("err = %v, want ErrStagnated", err)
	}
	if res.Iterations >= 100000 {
		t.Error("stagnation guard did not save the budget")
	}
	if res.Residual > 1e-10 {
		t.Errorf("stalled residual %g is not near the floating-point floor", res.Residual)
	}
	// The returned eigenpair is still the right one.
	if res.Lambda < 4 || res.Lambda > 5 {
		t.Errorf("stalled λ = %g implausible for c = 5 landscape", res.Lambda)
	}
}

func TestStagnationGuardDisabled(t *testing.T) {
	const nu = 6
	q := mutation.MustUniform(nu, 0.01)
	l := randLandscape(rng.New(2), nu)
	op, _ := NewFmmpOperator(q, l, Right, nil)
	res, err := PowerIteration(op, PowerOptions{
		Tol: 1e-30, MaxIter: 300, Start: FitnessStart(l), StallChecks: -1,
	})
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence with the guard disabled", err)
	}
	if res.Iterations != 300 {
		t.Errorf("iterations = %d, want the full budget 300", res.Iterations)
	}
}

func TestDefaultTolerance(t *testing.T) {
	small, _ := landscape.NewUniform(4, 1)
	if got := DefaultTolerance(small); got != 1e-12 {
		t.Errorf("small-problem default = %g, want the 1e-12 floor", got)
	}
	big, _ := landscape.NewRandom(40, 5, 1, 1)
	got := DefaultTolerance(big)
	want := 64 * 2.220446049250313e-16 * 5 * math.Sqrt(math.Pow(2, 40))
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("large-problem default = %g, want %g", got, want)
	}
	if got <= 1e-12 {
		t.Error("large problems must get a relaxed default")
	}
}

func TestStagnationResultUsable(t *testing.T) {
	// The stalled eigenpair must match a converged solve at a realistic
	// tolerance.
	const nu = 8
	q := mutation.MustUniform(nu, 0.02)
	l := randLandscape(rng.New(3), nu)
	op, _ := NewFmmpOperator(q, l, Right, nil)
	ok, err := PowerIteration(op, PowerOptions{Tol: 1e-12, Start: FitnessStart(l)})
	if err != nil {
		t.Fatal(err)
	}
	stalled, err := PowerIteration(op, PowerOptions{Tol: 1e-30, Start: FitnessStart(l)})
	if !errors.Is(err, ErrStagnated) {
		t.Fatalf("err = %v", err)
	}
	if math.Abs(ok.Lambda-stalled.Lambda) > 1e-12 {
		t.Errorf("stalled λ %.16g vs converged %.16g", stalled.Lambda, ok.Lambda)
	}
}
