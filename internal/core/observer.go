package core

import (
	"fmt"
	"sync/atomic"
)

// Observability hooks for the eigensolvers. Two independent mechanisms:
//
//   - PowerOptions.Observer is the per-solve convergence-trace hook: it
//     receives every residual check (iteration, λ̃, R) plus lifecycle
//     events, exactly the stream needed to plot stalls near the error
//     threshold where the spectral gap collapses. obs.TraceRecorder
//     satisfies it structurally.
//   - SetSolveObserver installs a process-wide metrics hook fed by every
//     power/block-power solve (counts, iteration deltas, outcomes) — the
//     source of the qs_power_* metric families.
//
// Both are nil by default; the disabled cost is a nil check (Observer) and
// one atomic pointer load per solve plus one per residual check
// (SolveObserver). No allocations either way — guarded by the alloc tests.

// Observer receives one solve's convergence trace. Step is called after
// every residual evaluation; Event marks lifecycle transitions using the
// Event* constants. An Observer is used by a single solve at a time and
// need not be safe for concurrent use.
type Observer interface {
	Step(iter int, lambda, residual float64)
	Event(event string, iter int, lambda, residual float64)
}

// Lifecycle events reported to Observer.Event and SolveObserver.SolveDone.
const (
	// EventStart opens a solve; lambda carries the shift µ in use.
	EventStart = "start"
	// EventConverged: the residual reached the tolerance.
	EventConverged = "converged"
	// EventStagnated: the residual stopped improving above the tolerance
	// (ErrStagnated).
	EventStagnated = "stagnated"
	// EventBudgetExhausted: MaxIter reached (ErrNoConvergence).
	EventBudgetExhausted = "budget_exhausted"
	// EventBreakdown: the iterate collapsed or left the representable
	// range (‖w‖ zero, NaN or Inf).
	EventBreakdown = "breakdown"
	// EventAborted: a Monitor callback requested termination.
	EventAborted = "aborted"
)

// Solve kinds reported to the SolveObserver. The span profiler reuses them
// as the names of the core-layer solve spans.
const (
	SolveKindPower       = "power"
	SolveKindBlockPower  = "block_power"
	SolveKindLanczos     = "lanczos"
	SolveKindShiftInvert = "shift_invert"
	SolveKindChebyshev   = "chebyshev"
)

// methodReporter is the optional Observer extension implemented by
// recorders that label their rows with the solve method (obs.TraceRecorder
// does, via its Method setter); plain observers are unaffected.
type methodReporter interface{ Method(kind string) }

// notifyMethod tells an observer which solve method is about to run, when
// it implements the optional methodReporter extension. Called once per
// solve at the EventStart site — so adaptive sweeps that fall through
// several gears on one point relabel the recorder per attempt.
func notifyMethod(o Observer, kind string) {
	if m, ok := o.(methodReporter); ok {
		m.Method(kind)
	}
}

// Iteration phase names reported as core-layer spans (internal/span) inside
// a solve span: one span per phase per iteration while a recorder is
// installed, nothing otherwise. These are the rows of the per-phase time
// table — the breakdown the paper's cost model talks about (matvec
// dominates; the BLAS-1 phases are the O(N) overhead around it).
const (
	PhaseMatvec         = "matvec"
	PhaseShift          = "shift"
	PhaseRayleigh       = "rayleigh"
	PhaseResidual       = "residual"
	PhaseNormalize      = "normalize"
	PhaseOrthonormalize = "orthonormalize"
	// PhaseTridiag is the small projected eigensolve of the Krylov methods
	// (tridiagonal for Lanczos/shift-invert, the probe's Ritz extraction).
	PhaseTridiag = "tridiag"
	// PhaseChebPoly is one degree-d Chebyshev filter application — d
	// matrix–vector products plus the three-term recurrence updates.
	PhaseChebPoly = "cheb_poly"
	// PhaseInnerSolve is one inner CG solve of (µI − W)·y = v inside the
	// shift-invert Lanczos iteration.
	PhaseInnerSolve = "inner_solve"
	// PhaseGapProbe is the k-step Lanczos probe that feeds the adaptive
	// method selector's online gap estimate.
	PhaseGapProbe = "gap_probe"
	// PhaseShiftFactor is one LU factorization of (M − λI) inside the
	// reduced-path Rayleigh-quotient iteration (errorclass emits it under
	// the core layer with this name).
	PhaseShiftFactor = "shift_factor"
)

// SolveObserver is the process-wide eigensolver metrics hook. SolveStep
// receives the iterations performed since the previous residual check, so
// accumulating it yields a live iteration counter mid-solve. Callbacks
// arrive concurrently from batched sweep workers; implementations must be
// safe for concurrent use.
type SolveObserver interface {
	SolveStart(kind string, dim int)
	SolveStep(kind string, iters int)
	SolveDone(kind string, iters int, residual float64, outcome string)
}

type solveHook struct{ o SolveObserver }

var solveObs atomic.Pointer[solveHook]

// SetSolveObserver installs o as the process-wide solve observer (nil
// uninstalls). Call at startup, not concurrently with running solves.
func SetSolveObserver(o SolveObserver) {
	if o == nil {
		solveObs.Store(nil)
		return
	}
	solveObs.Store(&solveHook{o: o})
}

// ConvergenceError carries the diagnostics of a failed (or stagnated)
// power iteration: everything needed to understand a stall near the
// critical window without rerunning — the shift in effect, the best
// residual attained, and how long ago it stopped improving. It unwraps to
// ErrNoConvergence or ErrStagnated, so errors.Is checks keep working.
type ConvergenceError struct {
	// Reason is the sentinel cause: ErrNoConvergence or ErrStagnated.
	Reason error
	// Method names the eigensolver gear that failed (a SolveKind*
	// constant: "power", "block_power", "chebyshev", "shift_invert", …);
	// "" for errors predating the field.
	Method string
	// Detail is an optional context note (e.g. the Monitor abort).
	Detail string
	// Iterations performed when the solve terminated.
	Iterations int
	// Residual at termination.
	Residual float64
	// BestResidual is the smallest residual seen over the whole solve.
	BestResidual float64
	// SinceImprovement is the number of iterations since BestResidual
	// last improved (relative 1e-6; see PowerOptions.StallChecks).
	SinceImprovement int
	// Shift is the spectral shift µ the iteration ran with.
	Shift float64
	// Tol is the requested residual tolerance.
	Tol float64
}

func (e *ConvergenceError) Error() string {
	msg := fmt.Sprintf("%v", e.Reason)
	if e.Detail != "" {
		msg += ": " + e.Detail
	}
	return fmt.Sprintf("%s: residual %g after %d iterations (best %g, %d iterations since improvement, shift µ=%g, tol %g)",
		msg, e.Residual, e.Iterations, e.BestResidual, e.SinceImprovement, e.Shift, e.Tol)
}

// Unwrap exposes the sentinel for errors.Is.
func (e *ConvergenceError) Unwrap() error { return e.Reason }
