package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/landscape"
	"repro/internal/mutation"
	"repro/internal/rng"
	"repro/internal/vec"
)

func randVector(r *rng.Source, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 2*r.Float64() - 1
	}
	return v
}

func randLandscape(r *rng.Source, nu int) landscape.Landscape {
	l, err := landscape.NewRandom(nu, 5, 1, r.Uint64())
	if err != nil {
		panic(err)
	}
	return l
}

var allForms = []Formulation{Right, Symmetric, Left}

func TestFmmpOperatorMatchesDense(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nu := 1 + int(r.Uint64n(8))
		p := 0.001 + 0.4*r.Float64()
		q := mutation.MustUniform(nu, p)
		l := randLandscape(r, nu)
		v := randVector(r, q.Dim())
		for _, form := range allForms {
			want := make([]float64, q.Dim())
			dw, err := NewDenseW(q, l, form)
			if err != nil {
				return false
			}
			dw.Apply(want, v)

			op, err := NewFmmpOperator(q, l, form, nil)
			if err != nil {
				return false
			}
			got := make([]float64, q.Dim())
			op.Apply(got, v)
			if vec.DistInf(got, want) > 1e-11 {
				return false
			}
			// Aliased application must agree too.
			aliased := vec.Clone(v)
			op.Apply(aliased, aliased)
			if vec.DistInf(aliased, want) > 1e-11 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestXmvpOperatorMatchesDense(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nu := 1 + int(r.Uint64n(8))
		p := 0.001 + 0.4*r.Float64()
		l := randLandscape(r, nu)
		x := mutation.MustXmvp(nu, p, nu)
		q := mutation.MustUniform(nu, p)
		v := randVector(r, x.Dim())
		for _, form := range allForms {
			want := make([]float64, x.Dim())
			dw, err := NewDenseW(q, l, form)
			if err != nil {
				return false
			}
			dw.Apply(want, v)

			op, err := NewXmvpOperator(x, l, form, nil)
			if err != nil {
				return false
			}
			got := make([]float64, x.Dim())
			op.Apply(got, v)
			if vec.DistInf(got, want) > 1e-11 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestOperatorsOnDeviceMatchSerial(t *testing.T) {
	r := rng.New(11)
	const nu = 9
	q := mutation.MustUniform(nu, 0.01)
	l := randLandscape(r, nu)
	v := randVector(r, q.Dim())
	dev := device.New(4, device.WithGrain(16))
	for _, form := range allForms {
		serialOp, err := NewFmmpOperator(q, l, form, nil)
		if err != nil {
			t.Fatal(err)
		}
		devOp, err := NewFmmpOperator(q, l, form, dev)
		if err != nil {
			t.Fatal(err)
		}
		a, b := make([]float64, q.Dim()), make([]float64, q.Dim())
		serialOp.Apply(a, v)
		devOp.Apply(b, v)
		if vec.DistInf(a, b) != 0 {
			t.Errorf("form %v: device operator differs from serial", form)
		}
	}
}

func TestShiftedOperator(t *testing.T) {
	r := rng.New(3)
	const nu = 6
	q := mutation.MustUniform(nu, 0.02)
	l := randLandscape(r, nu)
	base, err := NewFmmpOperator(q, l, Right, nil)
	if err != nil {
		t.Fatal(err)
	}
	mu := 0.37
	sh := &ShiftedOperator{Base: base, Mu: mu}
	if sh.Dim() != q.Dim() {
		t.Fatal("shifted dim wrong")
	}
	v := randVector(r, q.Dim())
	want := make([]float64, q.Dim())
	base.Apply(want, v)
	vec.AXPY(-mu, v, want)
	got := make([]float64, q.Dim())
	sh.Apply(got, v)
	if vec.DistInf(got, want) > 1e-13 {
		t.Error("out-of-place shifted apply wrong")
	}
	inPlace := vec.Clone(v)
	sh.Apply(inPlace, inPlace)
	if vec.DistInf(inPlace, want) > 1e-13 {
		t.Error("in-place shifted apply wrong")
	}
}

func TestShiftedOperatorAliasedApplyDoesNotAllocate(t *testing.T) {
	// The shift iteration applies (A − µI) aliased every step; the scratch
	// that preserves src is allocated once on first use and reused after.
	r := rng.New(11)
	const nu = 8
	q := mutation.MustUniform(nu, 0.02)
	l := randLandscape(r, nu)
	base, err := NewFmmpOperator(q, l, Right, nil)
	if err != nil {
		t.Fatal(err)
	}
	sh := &ShiftedOperator{Base: base, Mu: 0.21}
	v := randVector(r, q.Dim())
	sh.Apply(v, v) // first call allocates the scratch
	if allocs := testing.AllocsPerRun(10, func() { sh.Apply(v, v) }); allocs != 0 {
		t.Errorf("aliased ShiftedOperator.Apply allocates %.0f objects per call after warm-up", allocs)
	}
	// The scratch path must keep producing the same result as a fresh
	// out-of-place application.
	w := randVector(r, q.Dim())
	want := make([]float64, q.Dim())
	sh.Apply(want, w)
	got := vec.Clone(w)
	sh.Apply(got, got)
	if vec.DistInf(got, want) != 0 {
		t.Error("aliased apply with reused scratch differs from out-of-place apply")
	}
}

func TestConvertEigenvectorConsistency(t *testing.T) {
	// Solve the same problem in all three formulations; after conversion
	// to Right, all eigenvectors must agree up to scale.
	r := rng.New(7)
	const nu = 7
	q := mutation.MustUniform(nu, 0.01)
	l := randLandscape(r, nu)
	ref := make([]float64, 0)
	for _, form := range allForms {
		op, err := NewFmmpOperator(q, l, form, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := PowerIteration(op, PowerOptions{Tol: 1e-12, Start: FitnessStart(l)})
		if err != nil {
			t.Fatalf("form %v: %v", form, err)
		}
		x := res.Vector
		if err := ConvertEigenvector(x, form, Right, l); err != nil {
			t.Fatal(err)
		}
		vec.Normalize1(x)
		if form == Right {
			ref = vec.Clone(x)
			continue
		}
		if d := vec.DistInf(x, ref); d > 1e-8 {
			t.Errorf("form %v converted eigenvector differs from Right by %g", form, d)
		}
	}
}

func TestConvertEigenvectorRoundTrip(t *testing.T) {
	r := rng.New(8)
	l := randLandscape(r, 5)
	x := randVector(r, 32)
	orig := vec.Clone(x)
	for _, a := range allForms {
		for _, b := range allForms {
			y := vec.Clone(orig)
			if err := ConvertEigenvector(y, a, b, l); err != nil {
				t.Fatal(err)
			}
			if err := ConvertEigenvector(y, b, a, l); err != nil {
				t.Fatal(err)
			}
			if vec.DistInf(y, orig) > 1e-11 {
				t.Errorf("round trip %v→%v→%v deviates by %g", a, b, a, vec.DistInf(y, orig))
			}
		}
	}
}

func TestConvertEigenvectorLengthMismatch(t *testing.T) {
	l, _ := landscape.NewUniform(4, 1)
	if err := ConvertEigenvector(make([]float64, 8), Right, Left, l); err == nil {
		t.Error("length mismatch must error")
	}
}

func TestFormulationString(t *testing.T) {
	for _, f := range allForms {
		if f.String() == "" {
			t.Error("empty formulation name")
		}
	}
	if Formulation(99).String() == "" {
		t.Error("unknown formulation must still render")
	}
}

func TestOperatorConstructorsRejectMismatch(t *testing.T) {
	q := mutation.MustUniform(4, 0.1)
	l, _ := landscape.NewUniform(5, 1)
	if _, err := NewFmmpOperator(q, l, Right, nil); err == nil {
		t.Error("ν mismatch must be rejected (Fmmp)")
	}
	x := mutation.MustXmvp(4, 0.1, 2)
	if _, err := NewXmvpOperator(x, l, Right, nil); err == nil {
		t.Error("ν mismatch must be rejected (Xmvp)")
	}
	if _, err := NewDenseW(q, l, Right); err == nil {
		t.Error("ν mismatch must be rejected (dense)")
	}
}

func TestSymmetricFormIsSymmetric(t *testing.T) {
	r := rng.New(9)
	q := mutation.MustUniform(5, 0.03)
	l := randLandscape(r, 5)
	dw, err := NewDenseW(q, l, Symmetric)
	if err != nil {
		t.Fatal(err)
	}
	if !dw.M.IsSymmetric(1e-12) {
		t.Error("F^½QF^½ must be symmetric")
	}
	// The Right form generally is not.
	dr, _ := NewDenseW(q, l, Right)
	if dr.M.IsSymmetric(1e-12) {
		t.Error("Q·F with a random landscape should not be symmetric")
	}
}

func TestAllFormulationsShareSpectrum(t *testing.T) {
	r := rng.New(10)
	q := mutation.MustUniform(6, 0.02)
	l := randLandscape(r, 6)
	var lams []float64
	for _, form := range allForms {
		op, _ := NewFmmpOperator(q, l, form, nil)
		res, err := PowerIteration(op, PowerOptions{Tol: 1e-12, Start: FitnessStart(l)})
		if err != nil {
			t.Fatalf("form %v: %v", form, err)
		}
		lams = append(lams, res.Lambda)
	}
	for i := 1; i < len(lams); i++ {
		if math.Abs(lams[i]-lams[0]) > 1e-9 {
			t.Errorf("dominant eigenvalues differ across formulations: %v", lams)
		}
	}
}
