package core

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/landscape"
	"repro/internal/mutation"
	"repro/internal/rng"
	"repro/internal/vec"
)

func testVectors(seed uint64, k, n int) [][]float64 {
	r := rng.New(seed)
	vs := make([][]float64, k)
	for j := range vs {
		vs[j] = make([]float64, n)
		for i := range vs[j] {
			vs[j][i] = r.Float64() + 0.1
		}
	}
	return vs
}

func TestFmmpApplyBatchBitIdenticalToApply(t *testing.T) {
	const nu = 9
	q := mutation.MustUniform(nu, 0.015)
	l := randLandscape(rng.New(3), nu)
	for _, form := range []Formulation{Right, Symmetric, Left} {
		op, err := NewFmmpOperator(q, l, form, nil)
		if err != nil {
			t.Fatal(err)
		}
		src := testVectors(uint64(form)+5, 4, op.Dim())
		want := make([][]float64, len(src))
		for j := range src {
			want[j] = make([]float64, op.Dim())
			op.Apply(want[j], src[j])
		}
		// Out-of-place batch.
		dst := make([][]float64, len(src))
		for j := range dst {
			dst[j] = make([]float64, op.Dim())
		}
		op.ApplyBatch(dst, src)
		for j := range dst {
			for i := range dst[j] {
				if dst[j][i] != want[j][i] {
					t.Fatalf("form %d: vector %d entry %d: batch %v vs apply %v",
						form, j, i, dst[j][i], want[j][i])
				}
			}
		}
		// In-place batch (dst[j] aliases src[j]).
		op.ApplyBatch(src, src)
		for j := range src {
			for i := range src[j] {
				if src[j][i] != want[j][i] {
					t.Fatalf("form %d: in-place vector %d entry %d deviates", form, j, i)
				}
			}
		}
	}
}

func TestFmmpApplyBatchDeviceBitIdentical(t *testing.T) {
	const nu = 8
	q := mutation.MustUniform(nu, 0.02)
	l := randLandscape(rng.New(4), nu)
	serialOp, _ := NewFmmpOperator(q, l, Symmetric, nil)
	src := testVectors(9, 3, serialOp.Dim())
	want := make([][]float64, len(src))
	for j := range src {
		want[j] = vec.Clone(src[j])
	}
	serialOp.ApplyBatch(want, want)
	for _, workers := range []int{1, 2, 4} {
		d := device.New(workers, device.WithGrain(32))
		devOp, _ := NewFmmpOperator(q, l, Symmetric, d)
		got := make([][]float64, len(src))
		for j := range src {
			got[j] = vec.Clone(src[j])
		}
		devOp.ApplyBatch(got, got)
		for j := range got {
			for i := range got[j] {
				if got[j][i] != want[j][i] {
					t.Fatalf("workers=%d: vector %d entry %d deviates from serial", workers, j, i)
				}
			}
		}
	}
}

func TestBatchResidualsMatchesPerPair(t *testing.T) {
	const nu = 7
	q := mutation.MustUniform(nu, 0.01)
	l := randLandscape(rng.New(5), nu)
	op, _ := NewFmmpOperator(q, l, Symmetric, nil)

	first, err := PowerIteration(op, PowerOptions{Tol: 1e-12, Start: FitnessStart(l)})
	if err != nil {
		t.Fatal(err)
	}
	second, err := SecondEigenpair(op, first.Vector, PowerOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	lambdas := []float64{first.Lambda, second.Lambda}
	xs := [][]float64{first.Vector, second.Vector}
	res, err := BatchResiduals(op, lambdas, xs, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, op.Dim())
	for j := range xs {
		op.Apply(w, xs[j])
		var s float64
		for i := range w {
			r := w[i] - lambdas[j]*xs[j][i]
			s += r * r
		}
		if want := math.Sqrt(s); res[j] != want {
			t.Errorf("pair %d: batch residual %g, per-pair %g", j, res[j], want)
		}
		if res[j] > 1e-9 {
			t.Errorf("pair %d: residual %g unexpectedly large", j, res[j])
		}
	}

	// Scratch reuse path must agree and must reject short scratch.
	scratch := [][]float64{make([]float64, op.Dim()), make([]float64, op.Dim())}
	res2, err := BatchResiduals(op, lambdas, xs, scratch)
	if err != nil {
		t.Fatal(err)
	}
	for j := range res {
		if res[j] != res2[j] {
			t.Errorf("pair %d: scratch path residual differs", j)
		}
	}
	if _, err := BatchResiduals(op, lambdas, xs, scratch[:1]); err == nil {
		t.Error("short scratch must be rejected")
	}
	if _, err := BatchResiduals(op, lambdas[:1], xs, nil); err == nil {
		t.Error("length mismatch must be rejected")
	}
}

func TestBlockPowerMatchesDenseSpectrum(t *testing.T) {
	const nu = 7
	const k = 3
	q := mutation.MustUniform(nu, 0.02)
	l := randLandscape(rng.New(6), nu)
	vals := denseSpectrum(t, q, l)

	op, _ := NewFmmpOperator(q, l, Symmetric, nil)
	res, err := BlockPowerIteration(op, k, PowerOptions{Tol: 1e-10, Start: FitnessStart(l)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("block iteration did not converge")
	}
	for j := 0; j < k; j++ {
		if math.Abs(res.Lambdas[j]-vals[j]) > 1e-7 {
			t.Errorf("λ_%d = %.12g, dense %.12g", j, res.Lambdas[j], vals[j])
		}
	}
	// The basis must be orthonormal.
	for a := 0; a < k; a++ {
		for b := 0; b <= a; b++ {
			d := vec.Dot(res.Vectors[a], res.Vectors[b])
			want := 0.0
			if a == b {
				want = 1
			}
			if math.Abs(d-want) > 1e-8 {
				t.Errorf("XᵀX[%d][%d] = %g, want %g", a, b, d, want)
			}
		}
	}
}

func TestBlockPowerWidthOneMatchesPowerIteration(t *testing.T) {
	const nu = 6
	q := mutation.MustUniform(nu, 0.03)
	l := randLandscape(rng.New(7), nu)
	op, _ := NewFmmpOperator(q, l, Symmetric, nil)
	single, err := PowerIteration(op, PowerOptions{Tol: 1e-11, Start: FitnessStart(l)})
	if err != nil {
		t.Fatal(err)
	}
	block, err := BlockPowerIteration(op, 1, PowerOptions{Tol: 1e-11, Start: FitnessStart(l)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(block.Lambdas[0]-single.Lambda) > 1e-10 {
		t.Errorf("block λ₀ = %.15g, power λ₀ = %.15g", block.Lambdas[0], single.Lambda)
	}
	var dot float64
	for i := range single.Vector {
		dot += single.Vector[i] * block.Vectors[0][i]
	}
	if math.Abs(math.Abs(dot)-1) > 1e-9 {
		t.Errorf("|x₀ᵀx₀| = %g, want 1", math.Abs(dot))
	}
}

func TestBlockPowerValidation(t *testing.T) {
	q := mutation.MustUniform(4, 0.05)
	l, _ := landscape.NewUniform(4, 1)
	op, _ := NewFmmpOperator(q, l, Symmetric, nil)
	if _, err := BlockPowerIteration(op, 0, PowerOptions{}); err == nil {
		t.Error("width 0 must be rejected")
	}
	if _, err := BlockPowerIteration(op, op.Dim()+1, PowerOptions{}); err == nil {
		t.Error("width > n must be rejected")
	}
	if _, err := BlockPowerIteration(op, 2, PowerOptions{Start: make([]float64, 3)}); err == nil {
		t.Error("wrong start length must be rejected")
	}
}

func TestPowerWorkReuseAndWarmStartAlias(t *testing.T) {
	const nu = 7
	q := mutation.MustUniform(nu, 0.012)
	l := randLandscape(rng.New(8), nu)
	op, _ := NewFmmpOperator(q, l, Symmetric, nil)

	cold, err := PowerIteration(op, PowerOptions{Tol: 1e-11, Start: FitnessStart(l)})
	if err != nil {
		t.Fatal(err)
	}

	work := NewPowerWork(op.Dim())
	first, err := PowerIteration(op, PowerOptions{Tol: 1e-11, Start: FitnessStart(l), Work: work})
	if err != nil {
		t.Fatal(err)
	}
	if &first.Vector[0] != &work.x[0] {
		t.Fatal("result vector must alias the scratch iterate")
	}
	for i := range cold.Vector {
		if first.Vector[i] != cold.Vector[i] {
			t.Fatal("scratch-backed solve deviates from allocating solve")
		}
	}

	// Warm start where Start aliases the scratch iterate itself — the
	// continuation pattern of the sweep engine.
	warm, err := PowerIteration(op, PowerOptions{Tol: 1e-11, Start: first.Vector, Work: work})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(warm.Lambda-cold.Lambda) > 1e-10 {
		t.Errorf("warm λ = %.15g, cold λ = %.15g", warm.Lambda, cold.Lambda)
	}
	if warm.Iterations >= cold.Iterations {
		t.Errorf("warm restart took %d iterations, cold took %d", warm.Iterations, cold.Iterations)
	}
}

func TestWithProcessSharesLandscape(t *testing.T) {
	const nu = 6
	l := randLandscape(rng.New(9), nu)
	q1 := mutation.MustUniform(nu, 0.01)
	q2 := mutation.MustUniform(nu, 0.02)
	op1, err := NewFmmpOperator(q1, l, Symmetric, nil)
	if err != nil {
		t.Fatal(err)
	}
	op2, err := op1.WithProcess(q2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewFmmpOperator(q2, l, Symmetric, nil)
	if err != nil {
		t.Fatal(err)
	}
	x := testVectors(10, 1, op2.Dim())[0]
	got := make([]float64, op2.Dim())
	ref := make([]float64, op2.Dim())
	op2.Apply(got, x)
	want.Apply(ref, x)
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("entry %d: WithProcess operator deviates", i)
		}
	}
	if _, err := op1.WithProcess(mutation.MustUniform(nu+1, 0.01)); err == nil {
		t.Error("chain-length mismatch must be rejected")
	}
}
