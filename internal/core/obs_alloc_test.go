package core

import (
	"testing"
	"time"

	"repro/internal/landscape"
	"repro/internal/mutation"
	"repro/internal/span"
	"repro/internal/vec"
)

// Zero-overhead contract of the observability hooks (see internal/obs):
// with no observer installed, the solver hot paths must not allocate and
// must produce bit-identical results whether or not instrumentation ran
// before. The alloc guards below are the enforcement.

func obsTestOperator(t *testing.T, nu int, p float64) *FmmpOperator {
	t.Helper()
	q := mutation.MustUniform(nu, p)
	l, err := landscape.NewSinglePeak(nu, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	op, err := NewFmmpOperator(q, l, Right, nil)
	if err != nil {
		t.Fatal(err)
	}
	return op
}

func TestOperatorApplyDoesNotAllocateWithHooksDisabled(t *testing.T) {
	op := obsTestOperator(t, 12, 0.01)
	n := op.Dim()
	dst := make([]float64, n)
	src := make([]float64, n)
	vec.Fill(src, 1)
	if allocs := testing.AllocsPerRun(10, func() { op.Apply(dst, src) }); allocs != 0 {
		t.Errorf("FmmpOperator.Apply allocates %.0f objects per call with hooks disabled", allocs)
	}
}

func TestApplyBatchDoesNotAllocateWithHooksDisabled(t *testing.T) {
	op := obsTestOperator(t, 10, 0.01)
	n := op.Dim()
	const k = 3
	dst := make([][]float64, k)
	src := make([][]float64, k)
	for j := 0; j < k; j++ {
		dst[j] = make([]float64, n)
		src[j] = make([]float64, n)
		vec.Fill(src[j], 1+float64(j))
	}
	if allocs := testing.AllocsPerRun(10, func() { op.ApplyBatch(dst, src) }); allocs != 0 {
		t.Errorf("FmmpOperator.ApplyBatch allocates %.0f objects per call with hooks disabled", allocs)
	}
}

func TestPowerIterationDoesNotAllocateWithHooksDisabled(t *testing.T) {
	op := obsTestOperator(t, 10, 0.01)
	n := op.Dim()
	work := NewPowerWork(n)
	start := make([]float64, n)
	vec.Fill(start, 1)
	opts := PowerOptions{Tol: 1e-10, Work: work, Start: start}
	// Warm up once so lazily grown scratch settles before counting.
	if _, err := PowerIteration(op, opts); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := PowerIteration(op, opts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("PowerIteration allocates %.0f objects per solve with Work supplied and hooks disabled", allocs)
	}
}

// countingSolveObserver is a minimal SolveObserver for the bit-identity test.
type countingSolveObserver struct{ starts, steps, dones int }

func (c *countingSolveObserver) SolveStart(kind string, dim int)  { c.starts++ }
func (c *countingSolveObserver) SolveStep(kind string, iters int) { c.steps++ }
func (c *countingSolveObserver) SolveDone(kind string, iters int, residual float64, outcome string) {
	c.dones++
}

// recordingObserver is a minimal Observer for the bit-identity test.
type recordingObserver struct{ steps, events int }

func (r *recordingObserver) Step(iter int, lambda, residual float64) { r.steps++ }
func (r *recordingObserver) Event(event string, iter int, lambda, residual float64) {
	r.events++
}

// TestInstrumentationIsBitIdentical runs the same solve bare, under a full
// observer stack, and bare again, and requires the three results to agree
// to the last bit: instrumentation must only watch, never steer.
func TestInstrumentationIsBitIdentical(t *testing.T) {
	op := obsTestOperator(t, 10, 0.02)
	n := op.Dim()
	start := make([]float64, n)
	vec.Fill(start, 1)

	solve := func(observer Observer) PowerResult {
		res, err := PowerIteration(op, PowerOptions{Tol: 1e-11, Start: start, Observer: observer})
		if err != nil {
			t.Fatal(err)
		}
		out := res
		out.Vector = append([]float64(nil), res.Vector...)
		return out
	}

	bare := solve(nil)

	so := &countingSolveObserver{}
	SetSolveObserver(so)
	ro := &recordingObserver{}
	instrumented := solve(ro)
	SetSolveObserver(nil)

	bareAgain := solve(nil)

	for name, got := range map[string]PowerResult{"instrumented": instrumented, "bare-again": bareAgain} {
		if got.Lambda != bare.Lambda || got.Iterations != bare.Iterations || got.Residual != bare.Residual {
			t.Errorf("%s solve diverged: λ %v vs %v, iters %d vs %d, residual %v vs %v",
				name, got.Lambda, bare.Lambda, got.Iterations, bare.Iterations, got.Residual, bare.Residual)
		}
		for i := range got.Vector {
			if got.Vector[i] != bare.Vector[i] {
				t.Fatalf("%s solve: vector component %d differs bitwise", name, i)
			}
		}
	}
	if so.starts != 1 || so.dones != 1 || so.steps == 0 {
		t.Errorf("solve observer saw starts=%d steps=%d dones=%d", so.starts, so.steps, so.dones)
	}
	if ro.steps != instrumented.Iterations {
		t.Errorf("observer steps = %d, want one per residual check (%d)", ro.steps, instrumented.Iterations)
	}
	if ro.events != 2 { // start + converged
		t.Errorf("observer events = %d, want 2", ro.events)
	}
}

// countingSpanHandle / countingSpanRecorder are a minimal span.Recorder for
// the span bit-identity test.
type countingSpanHandle struct{ r *countingSpanRecorder }

func (h *countingSpanHandle) End(a1, a2 int64) { h.r.ends++ }

type countingSpanRecorder struct {
	begins, ends, records int
	byName                map[string]int
}

func (r *countingSpanRecorder) Begin(layer, name string) span.Handle {
	r.begins++
	if r.byName == nil {
		r.byName = make(map[string]int)
	}
	r.byName[layer+"/"+name]++
	return &countingSpanHandle{r: r}
}

func (r *countingSpanRecorder) Record(layer, name string, d time.Duration, a1, a2 int64) {
	r.records++
}

// TestSpanRecorderIsBitIdentical runs the same solve bare, under a span
// recorder, and bare again: spans must only watch, never steer, and the
// recorder must see the full phase structure.
func TestSpanRecorderIsBitIdentical(t *testing.T) {
	op := obsTestOperator(t, 10, 0.02)
	n := op.Dim()
	start := make([]float64, n)
	vec.Fill(start, 1)
	l, err := landscape.NewSinglePeak(10, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	mu := ConservativeShift(mutation.MustUniform(10, 0.02), l)

	solve := func() PowerResult {
		res, err := PowerIteration(op, PowerOptions{Tol: 1e-11, Start: start, Shift: mu})
		if err != nil {
			t.Fatal(err)
		}
		out := res
		out.Vector = append([]float64(nil), res.Vector...)
		return out
	}

	bare := solve()

	sr := &countingSpanRecorder{}
	span.SetRecorder(sr)
	spanned := solve()
	span.SetRecorder(nil)

	bareAgain := solve()

	for name, got := range map[string]PowerResult{"spanned": spanned, "bare-again": bareAgain} {
		if got.Lambda != bare.Lambda || got.Iterations != bare.Iterations || got.Residual != bare.Residual {
			t.Errorf("%s solve diverged: λ %v vs %v, iters %d vs %d, residual %v vs %v",
				name, got.Lambda, bare.Lambda, got.Iterations, bare.Iterations, got.Residual, bare.Residual)
		}
		for i := range got.Vector {
			if got.Vector[i] != bare.Vector[i] {
				t.Fatalf("%s solve: vector component %d differs bitwise", name, i)
			}
		}
	}
	if sr.begins == 0 || sr.begins != sr.ends {
		t.Errorf("span recorder saw begins=%d ends=%d, want equal and nonzero", sr.begins, sr.ends)
	}
	iters := spanned.Iterations
	if got := sr.byName["core/power"]; got != 1 {
		t.Errorf("solve spans = %d, want 1", got)
	}
	for phase, want := range map[string]int{
		PhaseMatvec: iters, PhaseShift: iters, PhaseRayleigh: iters,
		PhaseResidual: iters, PhaseNormalize: iters - 1, // the converged iteration never normalizes
	} {
		if got := sr.byName["core/"+phase]; got != want {
			t.Errorf("%s spans = %d, want %d", phase, got, want)
		}
	}
	if got := sr.byName["mutation/apply"]; got != iters {
		t.Errorf("mutation apply spans = %d, want %d", got, iters)
	}
}

// TestConvergenceErrorDiagnostics forces a stall and checks the enriched
// error carries the shift, best residual and staleness diagnostics.
func TestConvergenceErrorDiagnostics(t *testing.T) {
	op := obsTestOperator(t, 8, 0.04)
	l, _ := landscape.NewSinglePeak(8, 2, 1)
	mu := ConservativeShift(mutation.MustUniform(8, 0.04), l)
	_, err := PowerIteration(op, PowerOptions{
		Tol: 1e-30, MaxIter: 200, Shift: mu, StallChecks: -1, // negative disables the stall guard
	})
	ce, ok := err.(*ConvergenceError)
	if !ok {
		t.Fatalf("err = %T (%v), want *ConvergenceError", err, err)
	}
	if ce.Reason != ErrNoConvergence {
		t.Errorf("Reason = %v", ce.Reason)
	}
	if ce.Iterations != 200 || ce.Shift != mu || ce.Tol != 1e-30 {
		t.Errorf("diagnostics = %+v", ce)
	}
	if ce.BestResidual <= 0 || ce.BestResidual > ce.Residual*(1+1e-9)+1 {
		t.Errorf("BestResidual = %g (residual %g)", ce.BestResidual, ce.Residual)
	}
	if ce.SinceImprovement < 0 {
		t.Errorf("SinceImprovement = %d", ce.SinceImprovement)
	}
}
