package core

import (
	"repro/internal/device"
	"repro/internal/vec"
)

// Shared Krylov-subspace plumbing for the Lanczos-family solvers (Lanczos
// restarts, the shift-invert outer iteration, and the RitzGap probe): a
// reusable basis/tridiagonal scratch block and the single-cycle Lanczos
// three-term recurrence with full reorthogonalization. Keeping the step
// loop in one place means every caller inherits the same breakdown
// handling and the same memory trade-off accounting.

// KrylovWork is reusable scratch for Lanczos-style solves: a basis of up to
// k vectors of dimension n, the tridiagonal coefficients, and one product
// vector. Allocate once per solve slot (NewKrylovWork) and share it across
// the probes and Krylov solves of a sweep chain — repeated solves of the
// same (n, k) then allocate nothing.
type KrylovWork struct {
	basis [][]float64
	alpha []float64
	beta  []float64
	w     []float64
}

// NewKrylovWork returns empty scratch; buffers are sized lazily on first
// use, so one KrylovWork serves probes and solves with different basis
// sizes.
func NewKrylovWork(n int) *KrylovWork {
	_ = n // sizing is lazy; the parameter documents intent at call sites
	return &KrylovWork{}
}

// krylov returns the basis, coefficient, and product buffers (re)sized for
// a k-step dimension-n recurrence.
func (kw *KrylovWork) krylov(n, k int) (basis [][]float64, alpha, beta, w []float64) {
	if len(kw.basis) < k {
		nb := make([][]float64, k)
		copy(nb, kw.basis)
		kw.basis = nb
	}
	for i := 0; i < k; i++ {
		if len(kw.basis[i]) != n {
			kw.basis[i] = device.AllocVector(n)
		}
	}
	if len(kw.alpha) < k {
		kw.alpha = make([]float64, k)
	}
	if len(kw.beta) < k {
		kw.beta = make([]float64, k)
	}
	if len(kw.w) != n {
		kw.w = device.AllocVector(n)
	}
	return kw.basis[:k], kw.alpha[:k], kw.beta[:k], kw.w
}

// lanczosSteps runs up to k steps of the symmetric Lanczos recurrence on
// op, starting from the unit vector already stored in basis[0]. It fills
// alpha[0:built] and beta[0:built-1] (beta[j] couples basis[j] and
// basis[j+1]) with full reorthogonalization of the small basis, and
// returns built ≤ k, stopping early when the Krylov space closes (an
// invariant subspace: ‖w‖ below 1e-300). matvecs, when non-nil, is
// incremented once per operator application.
func lanczosSteps(op Operator, basis [][]float64, alpha, beta, w []float64, k int, matvecs *int) int {
	built := 0
	for j := 0; j < k; j++ {
		op.Apply(w, basis[j])
		if matvecs != nil {
			*matvecs++
		}
		alpha[j] = vec.Dot(basis[j], w)
		vec.AXPY(-alpha[j], basis[j], w)
		if j > 0 {
			vec.AXPY(-beta[j-1], basis[j-1], w)
		}
		// Full reorthogonalization: cheap at small k, removes the classic
		// Lanczos loss-of-orthogonality failure mode.
		for t := 0; t <= j; t++ {
			c := vec.Dot(basis[t], w)
			vec.AXPY(-c, basis[t], w)
		}
		built = j + 1
		if j+1 < k {
			b := vec.Norm2(w)
			if b < 1e-300 {
				break // invariant subspace found
			}
			beta[j] = b
			for i := range w {
				basis[j+1][i] = w[i] / b
			}
		}
	}
	return built
}
