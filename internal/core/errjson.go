package core

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Lossless JSON forms of the solver's diagnostic errors, so flight
// bundles and service responses can carry them without flattening to a
// message string. The sentinel Reason of a ConvergenceError maps to a
// stable token ("no_convergence", "stagnated") rather than its message,
// which keeps serialized errors comparable across versions that reword
// the sentinel text.

const (
	reasonNoConvergence = "no_convergence"
	reasonStagnated     = "stagnated"
)

// convergenceErrorJSON is the wire shape of ConvergenceError.
type convergenceErrorJSON struct {
	Reason           string  `json:"reason"`
	Method           string  `json:"method,omitempty"`
	Detail           string  `json:"detail,omitempty"`
	Iterations       int     `json:"iterations"`
	Residual         float64 `json:"residual"`
	BestResidual     float64 `json:"best_residual"`
	SinceImprovement int     `json:"since_improvement"`
	Shift            float64 `json:"shift"`
	Tol              float64 `json:"tol"`
}

// MarshalJSON serializes the error losslessly; see UnmarshalJSON for the
// inverse.
func (e *ConvergenceError) MarshalJSON() ([]byte, error) {
	reason := ""
	switch {
	case errors.Is(e.Reason, ErrNoConvergence):
		reason = reasonNoConvergence
	case errors.Is(e.Reason, ErrStagnated):
		reason = reasonStagnated
	case e.Reason != nil:
		reason = e.Reason.Error()
	}
	return json.Marshal(convergenceErrorJSON{
		Reason: reason, Method: e.Method, Detail: e.Detail,
		Iterations: e.Iterations, Residual: e.Residual, BestResidual: e.BestResidual,
		SinceImprovement: e.SinceImprovement, Shift: e.Shift, Tol: e.Tol,
	})
}

// UnmarshalJSON restores an error serialized by MarshalJSON. The known
// reason tokens map back onto the package sentinels, so errors.Is keeps
// working on a round-tripped error.
func (e *ConvergenceError) UnmarshalJSON(data []byte) error {
	var w convergenceErrorJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	switch w.Reason {
	case reasonNoConvergence:
		e.Reason = ErrNoConvergence
	case reasonStagnated:
		e.Reason = ErrStagnated
	case "":
		e.Reason = nil
	default:
		e.Reason = errors.New(w.Reason)
	}
	e.Method, e.Detail = w.Method, w.Detail
	e.Iterations, e.Residual, e.BestResidual = w.Iterations, w.Residual, w.BestResidual
	e.SinceImprovement, e.Shift, e.Tol = w.SinceImprovement, w.Shift, w.Tol
	return nil
}

// gapUnresolvedErrorJSON is the wire shape of GapUnresolvedError.
type gapUnresolvedErrorJSON struct {
	Reason     string  `json:"reason"`
	Lambda0    float64 `json:"lambda0"`
	Lambda1    float64 `json:"lambda1"`
	Separation float64 `json:"separation"`
	Resolution float64 `json:"resolution"`
}

// MarshalJSON serializes the error losslessly.
func (e *GapUnresolvedError) MarshalJSON() ([]byte, error) {
	return json.Marshal(gapUnresolvedErrorJSON{
		Reason: e.Reason, Lambda0: e.Lambda0, Lambda1: e.Lambda1,
		Separation: e.Separation, Resolution: e.Resolution,
	})
}

// UnmarshalJSON restores an error serialized by MarshalJSON.
func (e *GapUnresolvedError) UnmarshalJSON(data []byte) error {
	var w gapUnresolvedErrorJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.Reason == "" {
		return fmt.Errorf("core: gap error JSON missing reason")
	}
	e.Reason = w.Reason
	e.Lambda0, e.Lambda1 = w.Lambda0, w.Lambda1
	e.Separation, e.Resolution = w.Separation, w.Resolution
	return nil
}
