package localized

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/errorclass"
	"repro/internal/landscape"
	"repro/internal/mutation"
)

func TestMatchesExactReductionBelowThreshold(t *testing.T) {
	// Single peak at ν = 12, p well below threshold: the localized solve
	// must reproduce the exact class concentrations.
	const nu = 12
	const p = 0.005
	l, _ := landscape.NewSinglePeak(nu, 2, 1)
	res, err := Solve(nu, p, l, &Options{DMax: 5, MaxSupport: 4000, Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	red, err := errorclass.FromLandscape(l, p)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := red.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Lambda-exact.Lambda) > 1e-6 {
		t.Errorf("λ = %.10g, exact %.10g", res.Lambda, exact.Lambda)
	}
	for k := 0; k <= 4; k++ {
		if math.Abs(res.Gamma[k]-exact.Gamma[k]) > 1e-6 {
			t.Errorf("[Γ%d] = %.8g, exact %.8g", k, res.Gamma[k], exact.Gamma[k])
		}
	}
	if res.DiscardedMass > 1e-6 {
		t.Errorf("discarded mass %g should be negligible below threshold", res.DiscardedMass)
	}
}

func TestMatchesFullSolveOnRandomLandscape(t *testing.T) {
	// Unstructured landscape at ν = 14: compare against the exact Pi(Fmmp)
	// pipeline entry by entry on the top sequences.
	const nu = 14
	const p = 0.003
	l, err := landscape.NewRandom(nu, 5, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(nu, p, l, &Options{DMax: 4, MaxSupport: 3000, Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	q := mutation.MustUniform(nu, p)
	op, _ := core.NewFmmpOperator(q, l, core.Right, nil)
	full, err := core.PowerIteration(op, core.PowerOptions{Tol: 1e-12, Start: core.FitnessStart(l)})
	if err != nil {
		t.Fatal(err)
	}
	x := full.Vector
	if err := core.Concentrations(x); err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Lambda-full.Lambda) > 1e-5 {
		t.Errorf("λ = %.10g, full %.10g", res.Lambda, full.Lambda)
	}
	for _, e := range res.Support[:10] {
		if d := math.Abs(e.Concentration - x[e.Sequence]); d > 1e-5 {
			t.Errorf("x[%d] = %.8g, full %.8g", e.Sequence, e.Concentration, x[e.Sequence])
		}
	}
	// The top support sequence must be the overall argmax of the full
	// solution.
	maxIdx := 0
	for i, v := range x {
		if v > x[maxIdx] {
			maxIdx = i
		}
	}
	if res.Support[0].Sequence != uint64(maxIdx) {
		t.Errorf("top sequence %d, full argmax %d", res.Support[0].Sequence, maxIdx)
	}
}

func TestBeyondDenseReach(t *testing.T) {
	// ν = 40: a 2^40 = 10^12-entry vector is out of reach (8 TB), but the
	// localized solver needs only the sparse support. Verify against the
	// exact error-class reduction, which works at any ν.
	const nu = 40
	const p = 0.002 // νp = 0.08, deep in the ordered regime
	l, _ := landscape.NewSinglePeak(nu, 2, 1)
	res, err := Solve(nu, p, l, &Options{DMax: 2, MaxSupport: 2500, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	red, _ := errorclass.FromLandscape(l, p)
	exact, err := red.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// The finite support renormalizes away the (small) tail mass, so
	// compare tail-independent ratios and a loose λ.
	if math.Abs(res.Lambda-exact.Lambda) > 5e-3 {
		t.Errorf("λ = %.8g, exact %.8g", res.Lambda, exact.Lambda)
	}
	for k := 1; k <= 2; k++ {
		got := res.Gamma[k] / res.Gamma[0]
		want := exact.Gamma[k] / exact.Gamma[0]
		if math.Abs(got-want)/want > 1e-3 {
			t.Errorf("[Γ%d]/[Γ0] = %.8g, exact %.8g", k, got, want)
		}
	}
	if res.Support[0].Sequence != 0 {
		t.Error("master sequence must dominate")
	}
	t.Logf("ν=40: λ=%.6f (exact %.6f), support %d entries, leaked %.2g",
		res.Lambda, exact.Lambda, len(res.Support), res.DiscardedMass)
}

func TestDelocalizationDetectedAboveThreshold(t *testing.T) {
	// p far above the ν = 16 threshold (≈ 0.042): the uniform target
	// distribution cannot fit in a small support.
	const nu = 16
	l, _ := landscape.NewSinglePeak(nu, 2, 1)
	_, err := Solve(nu, 0.2, l, &Options{DMax: 3, MaxSupport: 500, MaxIter: 2000})
	if !errors.Is(err, ErrDelocalized) {
		t.Errorf("err = %v, want ErrDelocalized", err)
	}
}

func TestConcentrationLookup(t *testing.T) {
	const nu = 10
	l, _ := landscape.NewSinglePeak(nu, 2, 1)
	res, err := Solve(nu, 0.005, l, &Options{MaxSupport: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Concentration(0) != res.Support[0].Concentration {
		t.Error("Concentration(0) disagrees with support")
	}
	if res.Concentration(1<<nu-1) != 0 {
		t.Error("far sequence must report zero")
	}
}

func TestValidation(t *testing.T) {
	l, _ := landscape.NewSinglePeak(8, 2, 1)
	if _, err := Solve(8, 0, l, nil); err == nil {
		t.Error("invalid p must be rejected")
	}
	if _, err := Solve(9, 0.01, l, nil); err == nil {
		t.Error("ν mismatch must be rejected")
	}
	if _, err := Solve(0, 0.01, l, nil); err == nil {
		t.Error("ν = 0 must be rejected")
	}
}

func TestBudgetExhaustion(t *testing.T) {
	l, _ := landscape.NewSinglePeak(10, 2, 1)
	res, err := Solve(10, 0.01, l, &Options{MaxIter: 2, Tol: 1e-15})
	if !errors.Is(err, ErrNoConvergence) {
		t.Errorf("err = %v, want ErrNoConvergence", err)
	}
	if res == nil || res.Iterations != 2 || res.Support == nil {
		t.Error("partial result must be populated")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	l, _ := landscape.NewRandom(12, 5, 1, 3)
	a, err := Solve(12, 0.004, l, &Options{DMax: 3, MaxSupport: 1000, Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(12, 0.004, l, &Options{DMax: 3, MaxSupport: 1000, Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	if a.Lambda != b.Lambda || len(a.Support) != len(b.Support) {
		t.Fatal("runs differ")
	}
	for i := range a.Support {
		if a.Support[i] != b.Support[i] {
			t.Fatalf("support entry %d differs between runs", i)
		}
	}
}

func TestLargerDmaxImprovesAccuracy(t *testing.T) {
	const nu = 12
	const p = 0.008
	l, _ := landscape.NewSinglePeak(nu, 2, 1)
	red, _ := errorclass.FromLandscape(l, p)
	exact, err := red.Solve()
	if err != nil {
		t.Fatal(err)
	}
	errAt := func(dmax int) float64 {
		res, err := Solve(nu, p, l, &Options{DMax: dmax, MaxSupport: 4096, Tol: 1e-11})
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(res.Lambda - exact.Lambda)
	}
	e2, e5 := errAt(2), errAt(5)
	if e5 >= e2 {
		t.Errorf("dmax=5 error %g not better than dmax=2 error %g", e5, e2)
	}
}
