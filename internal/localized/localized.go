// Package localized implements the approximative, memory-reduced solver
// direction from the paper's conclusions ("the main limiting factor …
// is … the memory requirements. Consequently, in the future we will focus
// on … approximative strategies for a fast matrix vector product").
//
// Below the error threshold the quasispecies is *localized*: almost all
// probability mass sits on sequences within a few mutations of the master
// (Figure 1's ordered regime). This solver exploits that by iterating on a
// sparse vector that only stores the M most concentrated sequences:
//
//   - the matrix–vector product scatters each supported entry to its
//     Hamming-ball neighbourhood of radius dmax via XOR masks (the Xmvp
//     structure of [10], applied to a sparse operand);
//   - after each step the support is truncated back to the top M entries,
//     and the discarded mass is tracked as an explicit error estimate;
//   - λ is estimated by Φ(x) = Σ fⱼxⱼ, which equals ‖W·x‖₁ for a
//     1-normalized non-negative x because Q is column stochastic, and
//     converges to the dominant eigenvalue at the fixed point.
//
// Memory is Θ(M) instead of Θ(2^ν), so chain lengths far beyond dense
// vectors (ν = 40 and more) are solvable below the threshold. Above the
// threshold the distribution delocalizes, truncation discards macroscopic
// mass, and the solver reports that instead of silently returning noise —
// the approximation is *valid exactly where the biology is interesting*.
package localized

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/bits"
	"repro/internal/landscape"
	"repro/internal/mutation"
)

// Options configures the localized solver.
type Options struct {
	// DMax is the scatter radius per application (default 4). Larger
	// values cost Σ_{k≤dmax} C(ν,k) mask applications per supported entry
	// but capture more probability flux per step.
	DMax int
	// MaxSupport is M, the sparse support size (default 20000).
	MaxSupport int
	// Tol stops the iteration when the 1-norm change of the distribution
	// per step falls below it (default 1e-12).
	Tol float64
	// MaxIter caps the iterations (default 5000).
	MaxIter int
	// MaxDiscard aborts with ErrDelocalized when a single truncation
	// discards more than this mass fraction (default 1e-3): the
	// distribution no longer fits any localized description.
	MaxDiscard float64
}

func (o *Options) defaults(nu int) Options {
	out := Options{DMax: 4, MaxSupport: 20000, Tol: 1e-12, MaxIter: 5000, MaxDiscard: 1e-3}
	if o != nil {
		if o.DMax > 0 {
			out.DMax = o.DMax
		}
		if o.MaxSupport > 0 {
			out.MaxSupport = o.MaxSupport
		}
		if o.Tol > 0 {
			out.Tol = o.Tol
		}
		if o.MaxIter > 0 {
			out.MaxIter = o.MaxIter
		}
		if o.MaxDiscard > 0 {
			out.MaxDiscard = o.MaxDiscard
		}
	}
	if out.DMax > nu {
		out.DMax = nu
	}
	return out
}

// ErrDelocalized is returned when the distribution spreads beyond the
// sparse support — the solver's validity domain (ordered regime) is left.
var ErrDelocalized = errors.New("localized: distribution delocalized beyond the sparse support; " +
	"the model is at or above the error threshold")

// ErrNoConvergence is returned when MaxIter is exhausted.
var ErrNoConvergence = errors.New("localized: iteration budget exhausted before convergence")

// Entry is one supported sequence with its concentration.
type Entry struct {
	Sequence      uint64
	Concentration float64
}

// Result is a solved localized quasispecies.
type Result struct {
	// Lambda is the dominant-eigenvalue estimate Φ(x).
	Lambda float64
	// Support holds the surviving entries in descending concentration.
	Support []Entry
	// Gamma holds cumulative class concentrations [Γ0..Γν] of the
	// supported mass (classes beyond the support carry ≈ DiscardedMass).
	Gamma []float64
	// DiscardedMass is the total mass dropped by truncation over the run
	// (mass is renormalized each step; this is the cumulative leak and
	// bounds the approximation error of the tail).
	DiscardedMass float64
	// Iterations performed.
	Iterations int
	// Delta is the final per-step 1-norm change.
	Delta float64
}

// Concentration returns the concentration of sequence i (0 when outside
// the support).
func (r *Result) Concentration(i uint64) float64 {
	for _, e := range r.Support {
		if e.Sequence == i {
			return e.Concentration
		}
	}
	return 0
}

// Solve runs the localized power iteration for a uniform-rate process
// with error rate p over chain length nu and the given landscape. The
// landscape is accessed per sequence (never materialized), so any
// random-access Landscape works at any ν ≤ 62.
func Solve(nu int, p float64, land landscape.Landscape, o *Options) (*Result, error) {
	if err := mutation.ValidateRate(p); err != nil {
		return nil, err
	}
	if nu < 1 || nu > bits.MaxChainLen {
		return nil, fmt.Errorf("localized: chain length %d out of range [1, %d]", nu, bits.MaxChainLen)
	}
	if land.ChainLen() != nu {
		return nil, fmt.Errorf("localized: landscape ν = %d, want %d", land.ChainLen(), nu)
	}
	opts := o.defaults(nu)

	// Masks of weight ≤ dmax with their class probabilities, plus the
	// total captured column mass Σ QΓ_w·#masks — used to renormalize so
	// the truncated operator stays stochastic in expectation.
	qv := mutation.ClassValues(nu, p)
	type maskEntry struct {
		mask uint64
		prob float64
	}
	var masks []maskEntry
	bits.EnumerateUpToWeight(nu, opts.DMax, func(m uint64, w int) {
		masks = append(masks, maskEntry{mask: m, prob: qv[w]})
	})

	// Start: the master sequence.
	x := map[uint64]float64{0: 1}

	res := &Result{}
	prev := map[uint64]float64{}
	y := make(map[uint64]float64, opts.MaxSupport*4)
	for iter := 1; iter <= opts.MaxIter; iter++ {
		res.Iterations = iter
		// y ← truncated(W)·x, scattering in deterministic (sorted) order.
		keys := sortedKeys(x)
		clear(y)
		for _, j := range keys {
			fx := land.At(j) * x[j]
			for _, me := range masks {
				y[j^me.mask] += me.prob * fx
			}
		}
		// λ̃ = Φ(x) for the (1-normalized) current iterate.
		var lambda float64
		for _, j := range keys {
			lambda += land.At(j) * x[j]
		}
		res.Lambda = lambda

		// Truncate to the top M entries.
		entries := make([]Entry, 0, len(y))
		for k, v := range y {
			entries = append(entries, Entry{Sequence: k, Concentration: v})
		}
		sort.Slice(entries, func(a, b int) bool {
			if entries[a].Concentration != entries[b].Concentration {
				return entries[a].Concentration > entries[b].Concentration
			}
			return entries[a].Sequence < entries[b].Sequence
		})
		var total, kept float64
		for _, e := range entries {
			total += e.Concentration
		}
		if len(entries) > opts.MaxSupport {
			entries = entries[:opts.MaxSupport]
		}
		for _, e := range entries {
			kept += e.Concentration
		}
		if total <= 0 || math.IsNaN(total) {
			return res, fmt.Errorf("localized: iteration broke down at step %d", iter)
		}
		discard := (total - kept) / total
		res.DiscardedMass += discard
		if discard > opts.MaxDiscard {
			return res, fmt.Errorf("%w (%.2g mass dropped in one step at iteration %d)",
				ErrDelocalized, discard, iter)
		}

		// Normalize and measure the step change in 1-norm.
		next := make(map[uint64]float64, len(entries))
		for _, e := range entries {
			next[e.Sequence] = e.Concentration / kept
		}
		delta := distL1(prev, next)
		res.Delta = delta
		prev = next
		x = next
		if delta <= opts.Tol {
			finish(res, x, nu)
			return res, nil
		}
	}
	finish(res, x, nu)
	return res, fmt.Errorf("%w after %d iterations (Δ = %g)", ErrNoConvergence, res.Iterations, res.Delta)
}

func finish(res *Result, x map[uint64]float64, nu int) {
	res.Support = make([]Entry, 0, len(x))
	for k, v := range x {
		res.Support = append(res.Support, Entry{Sequence: k, Concentration: v})
	}
	sort.Slice(res.Support, func(a, b int) bool {
		if res.Support[a].Concentration != res.Support[b].Concentration {
			return res.Support[a].Concentration > res.Support[b].Concentration
		}
		return res.Support[a].Sequence < res.Support[b].Sequence
	})
	res.Gamma = make([]float64, nu+1)
	for _, e := range res.Support {
		res.Gamma[bits.Weight(e.Sequence)] += e.Concentration
	}
}

func sortedKeys(m map[uint64]float64) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	return keys
}

func distL1(a, b map[uint64]float64) float64 {
	var d float64
	for k, av := range a {
		d += math.Abs(av - b[k])
	}
	for k, bv := range b {
		if _, ok := a[k]; !ok {
			d += math.Abs(bv)
		}
	}
	return d
}
