package quasispecies

import (
	"bufio"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/landscape"
	"repro/internal/mutation"
	"repro/internal/obs"
	"repro/internal/perf"
)

// TestFlightStallAcceptance is the flight recorder's end-to-end check: a
// capped-iteration power solve pinned at the error threshold (ν = 14,
// p ≈ p_c) is forced to stall — it starts from the already-converged
// eigenvector with an unattainable tolerance, so the residual sits at the
// floating-point floor from the first check — and the watchdog must
// notice, emit a structured warning, and dump a diagnostic bundle whose
// run ID matches the manifest, the span profile, the trace rows, and a
// qs-perf ledger entry.
func TestFlightStallAcceptance(t *testing.T) {
	const nu = 14
	pc := 1 - math.Pow(2, -1/float64(nu))

	// Exact solution via the class reduction: the warm start that pins the
	// power iteration at its floor.
	l, err := SinglePeak(nu, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	mut, err := UniformMutation(nu, pc)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := func() (*Solution, error) {
		m, err := New(mut, l, WithMethod(MethodReduced))
		if err != nil {
			return nil, err
		}
		return m.Solve()
	}()
	if err != nil {
		t.Fatal(err)
	}
	if exact.Concentrations == nil {
		t.Fatal("reduced solve did not materialize concentrations")
	}

	tmp := t.TempDir()
	fl := StartFlight(FlightOptions{
		Dir: filepath.Join(tmp, "bundles"), Tool: "go-test",
		Nu: nu, Method: "power", PGrid: []float64{pc},
		WatchdogInterval: 2 * time.Millisecond,
		StallChecks:      3,
		StallWall:        -1 * time.Second,
		TraceEvery:       1,
		// A ledger path that does not exist: the slow-phase detector must
		// degrade to disabled, not interfere with the stall assertions.
		LedgerPath: filepath.Join(tmp, "no-ledger.jsonl"),
	})
	defer fl.Stop()

	ql, err := landscape.NewSinglePeak(nu, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	qm, err := mutation.NewUniform(nu, pc)
	if err != nil {
		t.Fatal(err)
	}
	op, err := core.NewFmmpOperator(qm, ql, core.Right, nil)
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	_, serr := core.PowerIteration(op, core.PowerOptions{
		Tol: 1e-30, MaxIter: 50_000_000,
		Start:       exact.Concentrations,
		StallChecks: -1, // disable the core guard; the watchdog is under test
		Observer:    fl.Observer("p=pc"),
		Monitor: func(iter int, lambda, residual float64) bool {
			// Keep iterating until the watchdog has dumped (or a generous
			// wall deadline expires and the test fails below).
			return len(fl.Bundles()) == 0 && time.Since(start) < 60*time.Second
		},
	})
	if serr == nil {
		t.Fatal("the forced-stall solve converged; the fixture is broken")
	}
	var cerr *core.ConvergenceError
	if !errors.As(serr, &cerr) {
		t.Fatalf("solve error %v is not a ConvergenceError", serr)
	}

	var stallDir string
	for _, b := range fl.Bundles() {
		if strings.HasSuffix(b, "-stall") {
			stallDir = b
		}
	}
	if stallDir == "" {
		t.Fatalf("watchdog did not dump a stall bundle; bundles = %v", fl.Bundles())
	}
	// The bundle is registered before its files land (the monitor aborted
	// the solve on registration); dump.json is written last, so wait for it.
	for deadline := time.Now().Add(10 * time.Second); ; {
		if fi, err := os.Stat(filepath.Join(stallDir, "dump.json")); err == nil && fi.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stall bundle never finished writing")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Run-ID consistency: manifest ↔ span profile ↔ trace rows ↔ ledger.
	man, err := obs.ReadManifestFile(filepath.Join(stallDir, "manifest.json"))
	if err != nil {
		t.Fatalf("bundle manifest: %v", err)
	}
	if man.RunID != fl.RunID() {
		t.Fatalf("manifest run ID %q != flight run ID %q", man.RunID, fl.RunID())
	}
	if man.Nu != nu || len(man.PGrid) != 1 {
		t.Fatalf("manifest workload = %+v", man)
	}

	prof := obs.InstalledProfiler()
	if prof == nil {
		t.Fatal("StartFlight did not install a span profiler")
	}
	if prof.RunID() != fl.RunID() {
		t.Fatalf("span profile run ID %q != flight run ID %q", prof.RunID(), fl.RunID())
	}

	traceFile, err := os.Open(filepath.Join(stallDir, "trace.jsonl"))
	if err != nil {
		t.Fatalf("bundle trace: %v", err)
	}
	defer traceFile.Close()
	sc := bufio.NewScanner(traceFile)
	rows := 0
	for sc.Scan() {
		var row struct {
			RunID string `json:"run_id"`
		}
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("trace row %d: %v", rows, err)
		}
		if row.RunID != fl.RunID() {
			t.Fatalf("trace row %d run ID %q != %q", rows, row.RunID, fl.RunID())
		}
		rows++
	}
	if rows == 0 {
		t.Fatal("bundle trace.jsonl is empty")
	}

	for _, name := range []string{"spans.jsonl", "decisions.jsonl", "goroutines.txt", "dump.json", "profile.txt", "chrome_trace.json"} {
		if fi, err := os.Stat(filepath.Join(stallDir, name)); err != nil || fi.Size() == 0 {
			t.Errorf("bundle %s missing or empty (err=%v)", name, err)
		}
	}

	// The ledger leg: a record stamped with this run (what qs-perf record
	// -flight writes) must read back naming the same manifest.
	ledger := filepath.Join(tmp, "ledger.jsonl")
	if err := perf.Append(ledger, perf.Record{
		Time: time.Now().UTC().Format(time.RFC3339), Label: "flight-acceptance",
		RunID: fl.RunID(), FlightBundle: stallDir, Nu: nu,
	}); err != nil {
		t.Fatal(err)
	}
	recs, err := perf.Read(ledger)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := perf.Latest(recs, "flight-acceptance")
	if !ok || rec.RunID != man.RunID || rec.FlightBundle != stallDir {
		t.Fatalf("ledger entry = %+v, want run %q bundle %q", rec, man.RunID, stallDir)
	}
}

// TestFlightOffIsInert: with no flight started, the tee points see a nil
// recorder and observing structures stay empty.
func TestFlightOffIsInert(t *testing.T) {
	if fl := obs.ActiveFlight(); fl != nil {
		t.Fatalf("a flight recorder leaked from another test: %v", fl.RunID())
	}
}

// TestTeeSolveObservers checks the tee combinator: nil short-circuits and
// both observers receive every call.
func TestTeeSolveObservers(t *testing.T) {
	if TeeSolveObservers(nil, nil) != nil {
		t.Fatal("tee of two nils is not nil")
	}
	a := &countObserver{}
	if TeeSolveObservers(a, nil) != SolveObserver(a) || TeeSolveObservers(nil, a) != SolveObserver(a) {
		t.Fatal("tee with one nil did not return the other observer unchanged")
	}
	b := &countObserver{}
	tee := TeeSolveObservers(a, b)
	tee.Step(1, 2.0, 1e-3)
	tee.Event("start", 0, 0, 0)
	if m, ok := tee.(interface{ Method(string) }); ok {
		m.Method("power")
	} else {
		t.Fatal("tee does not forward Method")
	}
	for i, o := range []*countObserver{a, b} {
		if o.steps != 1 || o.events != 1 || o.methods != 1 {
			t.Fatalf("observer %d saw steps=%d events=%d methods=%d", i, o.steps, o.events, o.methods)
		}
	}
}

type countObserver struct{ steps, events, methods int }

func (c *countObserver) Step(int, float64, float64)          { c.steps++ }
func (c *countObserver) Event(string, int, float64, float64) { c.events++ }
func (c *countObserver) Method(string)                       { c.methods++ }
