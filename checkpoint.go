package quasispecies

import (
	"fmt"
	"io"
	"os"

	"repro/internal/persist"
)

// Checkpointing: solved distributions at large ν are expensive to
// recompute, so Solution values can be written to and restored from a
// compact, checksummed binary format (see internal/persist for the
// layout).

// Save serializes the solution to w and returns an error on any I/O or
// validation failure. The Method field is not persisted (it describes how
// the solution was obtained, not what it is).
func (s *Solution) Save(w io.Writer) error {
	return persist.Write(w, &persist.Checkpoint{
		ChainLen:       len(s.Gamma) - 1,
		Lambda:         s.Lambda,
		Residual:       s.Residual,
		Iterations:     s.Iterations,
		Gamma:          s.Gamma,
		Concentrations: s.Concentrations,
	})
}

// SaveFile writes the solution to the named file (created or truncated).
func (s *Solution) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadSolution deserializes a solution previously written with Save,
// verifying the embedded checksum.
func ReadSolution(r io.Reader) (*Solution, error) {
	c, err := persist.Read(r)
	if err != nil {
		return nil, err
	}
	return &Solution{
		Lambda:         c.Lambda,
		Concentrations: c.Concentrations,
		Gamma:          c.Gamma,
		Iterations:     c.Iterations,
		Residual:       c.Residual,
	}, nil
}

// LoadSolutionFile reads a solution from the named file.
func LoadSolutionFile(path string) (*Solution, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sol, err := ReadSolution(f)
	if err != nil {
		return nil, fmt.Errorf("quasispecies: loading %s: %w", path, err)
	}
	return sol, nil
}
