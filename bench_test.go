package quasispecies_test

// One benchmark per figure of the paper, plus ablations for the design
// choices called out in DESIGN.md. The figure-scale runs (up to ν = 25)
// live in the cmd/qs-* tools, which print the full TSV series; these
// benchmarks pin the same code paths at sizes that complete in seconds so
// `go test -bench=.` exercises every experiment end to end.
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"testing"

	quasispecies "repro"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/harness"
	"repro/internal/landscape"
	"repro/internal/mutation"
	"repro/internal/ode"
	"repro/internal/vec"
)

// ---------------------------------------------------------------------------
// Figure 1: error-threshold sweeps (single-peak and linear landscapes)

func benchThreshold(b *testing.B, kind string) {
	var land quasispecies.Landscape
	var err error
	switch kind {
	case "singlepeak":
		land, err = quasispecies.SinglePeak(20, 2, 1)
	case "linear":
		land, err = quasispecies.LinearLandscape(20, 2, 1)
	}
	if err != nil {
		b.Fatal(err)
	}
	ps := []float64{0.005, 0.02, 0.035, 0.05, 0.08}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := quasispecies.ThresholdCurve(land, ps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1SinglePeak regenerates the left panel of Figure 1 (ν = 20,
// f₀ = 2, fᵢ = 1): five representative error rates per iteration.
func BenchmarkFig1SinglePeak(b *testing.B) { benchThreshold(b, "singlepeak") }

// BenchmarkFig1Linear regenerates the right panel of Figure 1 (linear
// landscape, ν = 20).
func BenchmarkFig1Linear(b *testing.B) { benchThreshold(b, "linear") }

// ---------------------------------------------------------------------------
// Figure 2: one matrix–vector product per method

func fig2Setup(b *testing.B, nu int) (landscape.Landscape, []float64, []float64) {
	b.Helper()
	l, err := landscape.NewRandom(nu, 5, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	x := core.FitnessStart(l)
	dst := make([]float64, l.Dim())
	return l, x, dst
}

// BenchmarkFig2Smvp is the Θ(N²) reference product Xmvp(ν) ≡ Smvp.
func BenchmarkFig2Smvp(b *testing.B) {
	for _, nu := range []int{8, 10, 12} {
		b.Run(fmt.Sprintf("nu%d", nu), func(b *testing.B) {
			l, x, dst := fig2Setup(b, nu)
			xm := mutation.MustXmvp(nu, 0.01, nu)
			op, err := core.NewXmvpOperator(xm, l, core.Right, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op.Apply(dst, x)
			}
		})
	}
}

// BenchmarkFig2Xmvp1 is the coarsest sparsification, Θ(N·(ν+1)).
func BenchmarkFig2Xmvp1(b *testing.B) {
	for _, nu := range []int{12, 16, 20} {
		b.Run(fmt.Sprintf("nu%d", nu), func(b *testing.B) {
			l, x, dst := fig2Setup(b, nu)
			xm := mutation.MustXmvp(nu, 0.01, 1)
			op, err := core.NewXmvpOperator(xm, l, core.Right, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op.Apply(dst, x)
			}
		})
	}
}

// BenchmarkFig2Fmmp is the paper's exact Θ(N·log₂N) product.
func BenchmarkFig2Fmmp(b *testing.B) {
	for _, nu := range []int{12, 16, 20} {
		b.Run(fmt.Sprintf("nu%d", nu), func(b *testing.B) {
			l, x, dst := fig2Setup(b, nu)
			q := mutation.MustUniform(nu, 0.01)
			op, err := core.NewFmmpOperator(q, l, core.Right, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op.Apply(dst, x)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Figure 3: full power-iteration solves per method

func fig3Solve(b *testing.B, op core.Operator, l landscape.Landscape, tol float64) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PowerIteration(op, core.PowerOptions{
			Tol: tol, Start: core.FitnessStart(l),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3PiXmvpFull solves with the Θ(N²) reference product.
func BenchmarkFig3PiXmvpFull(b *testing.B) {
	const nu = 10
	l, _ := landscape.NewRandom(nu, 5, 1, 1)
	xm := mutation.MustXmvp(nu, 0.01, nu)
	op, err := core.NewXmvpOperator(xm, l, core.Right, nil)
	if err != nil {
		b.Fatal(err)
	}
	fig3Solve(b, op, l, 1e-13)
}

// BenchmarkFig3PiXmvp5 solves with the paper's ≈1e-10-accurate truncation.
func BenchmarkFig3PiXmvp5(b *testing.B) {
	const nu = 14
	l, _ := landscape.NewRandom(nu, 5, 1, 1)
	xm := mutation.MustXmvp(nu, 0.01, 5)
	op, err := core.NewXmvpOperator(xm, l, core.Right, nil)
	if err != nil {
		b.Fatal(err)
	}
	fig3Solve(b, op, l, 1e-10)
}

// BenchmarkFig3PiFmmp solves with the fast exact product — the paper's
// headline configuration.
func BenchmarkFig3PiFmmp(b *testing.B) {
	for _, nu := range []int{14, 18} {
		b.Run(fmt.Sprintf("nu%d", nu), func(b *testing.B) {
			l, _ := landscape.NewRandom(nu, 5, 1, 1)
			q := mutation.MustUniform(nu, 0.01)
			op, err := core.NewFmmpOperator(q, l, core.Right, nil)
			if err != nil {
				b.Fatal(err)
			}
			fig3Solve(b, op, l, 1e-13)
		})
	}
}

// ---------------------------------------------------------------------------
// Figure 4: algorithm × hardware — serial vs parallel device Pi(Fmmp)

// BenchmarkFig4DevicePiFmmp runs the full solve on the parallel kernel
// runtime (the GPU analogue); compare against BenchmarkFig3PiFmmp for the
// hardware offset of Figure 4. On a single-core host the two coincide.
func BenchmarkFig4DevicePiFmmp(b *testing.B) {
	const nu = 18
	l, _ := landscape.NewRandom(nu, 5, 1, 1)
	q := mutation.MustUniform(nu, 0.01)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			dev := device.New(workers)
			op, err := core.NewFmmpOperator(q, l, core.Right, dev)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.PowerIteration(op, core.PowerOptions{
					Tol: 1e-13, Start: core.FitnessStart(l), Dev: dev,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4SpeedupPipeline exercises the end-to-end Figure 4
// derivation (measure, extrapolate, tabulate) at reduced scale.
func BenchmarkFig4SpeedupPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := harness.SolverRuntimes(harness.SolverConfig{
			Nus: []int{8, 10, 12}, MaxFull: 10, TolExact: 1e-11, TolApprox: 1e-9, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		harness.Speedups(series[0], series[1:])
	}
}

// ---------------------------------------------------------------------------
// Ablations (design choices called out in DESIGN.md)

// BenchmarkAblationStageOrder compares the two mathematically equivalent
// butterfly orderings (Eq. 9 ascending vs Eq. 10 descending strides).
func BenchmarkAblationStageOrder(b *testing.B) {
	const nu = 20
	q := mutation.MustUniform(nu, 0.01)
	v := make([]float64, q.Dim())
	for i := range v {
		v[i] = 1
	}
	b.Run("eq9-ascending", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q.Apply(v)
		}
	})
	b.Run("eq10-descending", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q.ApplyDescending(v)
		}
	})
}

// BenchmarkAblationShift measures the Section 3 convergence shift.
func BenchmarkAblationShift(b *testing.B) {
	const nu = 14
	l, _ := landscape.NewRandom(nu, 5, 1, 1)
	q := mutation.MustUniform(nu, 0.01)
	op, err := core.NewFmmpOperator(q, l, core.Right, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, shifted := range []bool{false, true} {
		name := "off"
		mu := 0.0
		if shifted {
			name = "on"
			mu = core.ConservativeShift(q, l)
		}
		b.Run("shift-"+name, func(b *testing.B) {
			var iters int
			for i := 0; i < b.N; i++ {
				res, err := core.PowerIteration(op, core.PowerOptions{
					Tol: 1e-12, Start: core.FitnessStart(l), Shift: mu,
				})
				if err != nil {
					b.Fatal(err)
				}
				iters = res.Iterations
			}
			b.ReportMetric(float64(iters), "iters")
		})
	}
}

// BenchmarkAblationStartVector compares the paper's diag(F)/‖·‖₁ start
// against the naive uniform start.
func BenchmarkAblationStartVector(b *testing.B) {
	const nu = 14
	l, _ := landscape.NewRandom(nu, 5, 1, 1)
	q := mutation.MustUniform(nu, 0.01)
	op, err := core.NewFmmpOperator(q, l, core.Right, nil)
	if err != nil {
		b.Fatal(err)
	}
	uniform := make([]float64, q.Dim())
	vec.Fill(uniform, 1.0/float64(q.Dim()))
	for _, cfg := range []struct {
		name  string
		start []float64
	}{{"fitness-start", core.FitnessStart(l)}, {"uniform-start", uniform}} {
		b.Run(cfg.name, func(b *testing.B) {
			var iters int
			for i := 0; i < b.N; i++ {
				res, err := core.PowerIteration(op, core.PowerOptions{
					Tol: 1e-12, Start: cfg.start,
				})
				if err != nil {
					b.Fatal(err)
				}
				iters = res.Iterations
			}
			b.ReportMetric(float64(iters), "iters")
		})
	}
}

// BenchmarkAblationLanczosVsPower compares the two eigensolvers near the
// error threshold, where the spectral gap closes.
func BenchmarkAblationLanczosVsPower(b *testing.B) {
	const nu = 12
	l, _ := landscape.NewSinglePeak(nu, 2, 1)
	q := mutation.MustUniform(nu, 0.04)
	op, err := core.NewFmmpOperator(q, l, core.Symmetric, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("power", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.PowerIteration(op, core.PowerOptions{
				Tol: 1e-11, Start: core.FitnessStart(l),
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lanczos", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Lanczos(op, core.LanczosOptions{
				Tol: 1e-11, Start: core.FitnessStart(l),
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationReducedVsFull quantifies the Section 5.1 reduction:
// identical answers, (ν+1)² vs N·log₂N-per-iteration cost.
func BenchmarkAblationReducedVsFull(b *testing.B) {
	const nu = 16
	mut, _ := quasispecies.UniformMutation(nu, 0.01)
	land, _ := quasispecies.SinglePeak(nu, 2, 1)
	for _, m := range []quasispecies.Method{quasispecies.MethodReduced, quasispecies.MethodFmmp} {
		model, err := quasispecies.New(mut, land, quasispecies.WithMethod(m))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := model.Solve(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationShiftInvertQ measures the Θ(N·log₂N) shift-and-invert
// product of Section 3 against a plain Fmmp product (its building block
// cost: two FWHTs vs one butterfly pass).
func BenchmarkAblationShiftInvertQ(b *testing.B) {
	const nu = 18
	q := mutation.MustUniform(nu, 0.01)
	v := make([]float64, q.Dim())
	for i := range v {
		v[i] = 1
	}
	b.Run("fmmp-product", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q.Apply(v)
		}
	})
	b.Run("shift-invert-product", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := q.ApplyShiftInvert(v, -0.5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Kernel ablations: cache-blocked vs naive butterflies, pool vs spawn dispatch

// BenchmarkKernelFmmpBlockedVsNaive compares the production cache-blocked
// stage-fused butterfly kernel against the literal one-pass-per-stage loop
// of Algorithm 1 at figure scales. The two are bit-identical in output; the
// difference is purely memory traffic (no stage streams the vector at a
// stride larger than the tile).
func BenchmarkKernelFmmpBlockedVsNaive(b *testing.B) {
	for _, nu := range []int{16, 20, 22} {
		q := mutation.MustUniform(nu, 0.01)
		v := make([]float64, q.Dim())
		vec.Fill(v, 1)
		b.Run(fmt.Sprintf("naive/nu%d", nu), func(b *testing.B) {
			b.SetBytes(int64(8 * q.Dim()))
			for i := 0; i < b.N; i++ {
				q.ApplyNaive(v)
			}
		})
		b.Run(fmt.Sprintf("blocked/nu%d", nu), func(b *testing.B) {
			b.SetBytes(int64(8 * q.Dim()))
			for i := 0; i < b.N; i++ {
				q.Apply(v)
			}
		})
	}
}

// BenchmarkKernelFWHTBlockedVsNaive is the same comparison for the
// Walsh–Hadamard transform backing the shift-invert product.
func BenchmarkKernelFWHTBlockedVsNaive(b *testing.B) {
	for _, nu := range []int{16, 20, 22} {
		v := make([]float64, 1<<uint(nu))
		vec.Fill(v, 1)
		b.Run(fmt.Sprintf("naive/nu%d", nu), func(b *testing.B) {
			b.SetBytes(int64(8 * len(v)))
			for i := 0; i < b.N; i++ {
				mutation.FWHTNaive(v)
			}
		})
		b.Run(fmt.Sprintf("blocked/nu%d", nu), func(b *testing.B) {
			b.SetBytes(int64(8 * len(v)))
			for i := 0; i < b.N; i++ {
				mutation.FWHT(v)
			}
		})
	}
}

// BenchmarkKernelPoolVsSpawn compares the persistent worker-pool dispatch
// with fused stage-group launches (the production path) against the legacy
// goroutine-per-chunk spawn dispatch with one launch per butterfly stage —
// the software analogue of kernel-launch overhead on the card.
func BenchmarkKernelPoolVsSpawn(b *testing.B) {
	for _, nu := range []int{16, 20} {
		q := mutation.MustUniform(nu, 0.01)
		v := make([]float64, q.Dim())
		vec.Fill(v, 1)
		for _, workers := range []int{2, 4} {
			spawnDev := device.New(workers, device.WithSpawnDispatch())
			poolDev := device.New(workers)
			b.Run(fmt.Sprintf("spawn-naive/nu%d/workers%d", nu, workers), func(b *testing.B) {
				b.SetBytes(int64(8 * q.Dim()))
				for i := 0; i < b.N; i++ {
					q.ApplyDeviceNaive(spawnDev, v)
				}
			})
			b.Run(fmt.Sprintf("pool-blocked/nu%d/workers%d", nu, workers), func(b *testing.B) {
				b.SetBytes(int64(8 * q.Dim()))
				for i := 0; i < b.N; i++ {
					q.ApplyDevice(poolDev, v)
				}
			})
		}
	}
}

// BenchmarkODEStep measures one RK4 step of the replicator–mutator system
// (Eq. 1) on the fast operator.
func BenchmarkODEStep(b *testing.B) {
	const nu = 16
	l, _ := landscape.NewRandom(nu, 5, 1, 1)
	q := mutation.MustUniform(nu, 0.01)
	op, err := core.NewFmmpOperator(q, l, core.Right, nil)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := ode.NewSystem(op, l)
	if err != nil {
		b.Fatal(err)
	}
	x := ode.MasterStart(sys.Dim())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.IntegrateRK4(x, 0, 1e-3, 1, ode.RK4Options{Renormalize: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKroneckerNu100 solves the paper's ν = 100 flagship problem
// (five 20-bit blocks) end to end.
func BenchmarkKroneckerNu100(b *testing.B) {
	factor := make([]float64, 1<<20)
	for i := range factor {
		factor[i] = 1
	}
	factor[0] = 1.15
	blocks := make([]quasispecies.KroneckerBlock, 5)
	for i := range blocks {
		blocks[i] = quasispecies.KroneckerBlock{ChainLen: 20, ErrorRate: 0.002, Fitness: factor}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := quasispecies.SolveKronecker(blocks, quasispecies.WithTolerance(1e-11))
		if err != nil {
			b.Fatal(err)
		}
		sol.Gamma()
	}
}
