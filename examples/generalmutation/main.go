// General mutation processes and dynamics: the quasispecies model beyond
// the textbook uniform error rate (Section 2.2), plus the time-dependent
// view of Eq. 1.
//
// The example builds a virus whose 3' end copies an order of magnitude
// less faithfully than its 5' end (position-dependent error rates), adds a
// strand bias (asymmetric 0→1 / 1→0 probabilities), solves for the
// stationary population with the same Θ(N·log₂N) machinery, and finally
// integrates the replication–mutation ODE to watch the population relax
// toward the computed quasispecies.
//
//	go run ./examples/generalmutation
package main

import (
	"fmt"
	"log"
	"math"

	quasispecies "repro"
)

const chainLen = 14

func main() {
	// Position-dependent error rates: 0.002 at the 5' end rising to 0.02
	// at the 3' end.
	rates := make([]float64, chainLen)
	for k := range rates {
		rates[k] = 0.002 * math.Pow(10, float64(k)/float64(chainLen-1))
	}
	mut, err := quasispecies.PerSiteMutation(rates)
	if err != nil {
		log.Fatal(err)
	}
	land, err := quasispecies.RandomLandscape(chainLen, 5, 1, 42)
	if err != nil {
		log.Fatal(err)
	}
	model, err := quasispecies.New(mut, land, quasispecies.WithTolerance(1e-12))
	if err != nil {
		log.Fatal(err)
	}
	sol, err := model.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("position-dependent rates (%.3g … %.3g): λ = %.6f, x₀ = %.4f, method %s\n",
		rates[0], rates[chainLen-1], sol.Lambda, sol.MasterConcentration(), sol.Method)

	// Strand-biased (asymmetric) mutation: 1→0 happens 4× more often than
	// 0→1. The mutation matrix loses its symmetry; the solver is unfazed.
	factors := make([]quasispecies.SiteFactor, chainLen)
	for k := range factors {
		factors[k] = quasispecies.SiteFactor{Stay0: 1 - 0.004, Stay1: 1 - 0.016}
	}
	biased, err := quasispecies.GeneralMutation(factors)
	if err != nil {
		log.Fatal(err)
	}
	bmodel, err := quasispecies.New(biased, land)
	if err != nil {
		log.Fatal(err)
	}
	bsol, err := bmodel.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strand-biased mutation:                    λ = %.6f, x₀ = %.4f\n",
		bsol.Lambda, bsol.MasterConcentration())

	// Dynamics (Eq. 1): start from a pure master population and watch the
	// mean fitness Φ(t) relax to λ as the mutant cloud forms.
	fmt.Println("\nrelaxation of Φ(t) toward λ under the biased process:")
	tr, err := bmodel.Evolve(nil, 8, quasispecies.EvolveOptions{Snapshots: 8})
	if err != nil {
		log.Fatal(err)
	}
	for i, state := range tr.States {
		phi, err := bmodel.MeanFitness(state)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  t = %4.1f   Φ = %.8f   (λ − Φ = %+.2e)\n",
			tr.Times[i], phi, bsol.Lambda-phi)
	}
	final := tr.Final()
	maxDev := 0.0
	for i, v := range final {
		if d := math.Abs(v - bsol.Concentrations[i]); d > maxDev {
			maxDev = d
		}
	}
	fmt.Printf("\nmax deviation between the t = %.0f state and the eigenvector solution: %.2e\n",
		tr.Times[len(tr.Times)-1], maxDev)
	fmt.Printf("(the ODE and eigenvalue views of the model agree — integrator used %d adaptive steps)\n",
		tr.Steps)
}
