// Multi-resolution analysis: the "concentrations at various resolution
// levels" direction from the paper's conclusions. Solve once, then read
// the stationary population at every granularity — single sequences,
// per-position mutation probabilities and linkage, coarse blocks, error
// classes — and checkpoint the result for later sessions.
//
//	go run ./examples/analysis
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	quasispecies "repro"
)

func main() {
	const nu = 16
	const p = 0.015

	mut, err := quasispecies.UniformMutation(nu, p)
	if err != nil {
		log.Fatal(err)
	}
	// A rugged landscape: a strong master plus random fitness elsewhere.
	land, err := quasispecies.RandomLandscape(nu, 5, 1, 2024)
	if err != nil {
		log.Fatal(err)
	}
	model, err := quasispecies.New(mut, land, quasispecies.WithMethod(quasispecies.MethodFmmp))
	if err != nil {
		log.Fatal(err)
	}
	sol, err := model.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solved ν=%d in %d iterations: λ = %.6f\n\n", nu, sol.Iterations, sol.Lambda)

	// Resolution level 0: individual sequences.
	top, err := sol.TopSequences(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("single-sequence resolution — the five dominant genotypes:")
	for _, e := range top {
		fmt.Printf("  X%-6d (%0*b)  %.5f\n", e.Sequence, nu, e.Sequence, e.Concentration)
	}

	// Position resolution: mutation probability and linkage per site.
	pa, err := sol.AnalyzePositions()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-position mutation probabilities (one Walsh transform):")
	for k, prob := range pa.MutationProbability {
		fmt.Printf("  pos %2d: %.5f\n", k, prob)
		if k == 3 {
			fmt.Printf("  … %d more positions\n", nu-4)
			break
		}
	}
	fmt.Printf("consensus sequence: %0*b (the master: %v)\n", nu, pa.Consensus, pa.Consensus == 0)
	// Strongest linkage pair.
	bj, bk, best := 0, 1, 0.0
	for j := 0; j < nu; j++ {
		for k := j + 1; k < nu; k++ {
			if c := pa.Covariance[j][k]; c > best {
				bj, bk, best = j, k, c
			}
		}
	}
	fmt.Printf("strongest positive linkage: positions %d and %d (cov %.3g)\n", bj, bk, best)

	// Block resolution: the coarsening pyramid.
	fmt.Println("\ncoarse distributions (mass of the master's block per level):")
	for _, level := range []int{4, 8, 12} {
		coarse, err := sol.CoarseDistribution(level)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  level %2d (%5d blocks): block₀ holds %.5f\n", level, len(coarse), coarse[0])
	}

	// Class resolution: the Γ distribution of Figure 1.
	fmt.Println("\nerror-class resolution:")
	for k := 0; k <= 4; k++ {
		fmt.Printf("  [Γ%d] = %.5f\n", k, sol.Gamma[k])
	}

	// Checkpoint the solution; a later session reloads it instantly.
	path := filepath.Join(os.TempDir(), "quasispecies-nu16.ckpt")
	if err := sol.SaveFile(path); err != nil {
		log.Fatal(err)
	}
	restored, err := quasispecies.LoadSolutionFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncheckpointed to %s and restored: λ = %.6f (match: %v)\n",
		path, restored.Lambda, restored.Lambda == sol.Lambda)
	os.Remove(path)
}
