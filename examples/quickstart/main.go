// Quickstart: compute the quasispecies of a single-peak landscape and
// inspect the stationary population.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	quasispecies "repro"
)

func main() {
	const (
		chainLen  = 20   // ν: sequences have 2^20 ≈ 10^6 possible genotypes
		errorRate = 0.01 // p: per-position copying error probability
	)

	// The master sequence replicates twice as fast as everything else.
	mut, err := quasispecies.UniformMutation(chainLen, errorRate)
	if err != nil {
		log.Fatal(err)
	}
	land, err := quasispecies.SinglePeak(chainLen, 2, 1)
	if err != nil {
		log.Fatal(err)
	}

	model, err := quasispecies.New(mut, land)
	if err != nil {
		log.Fatal(err)
	}
	sol, err := model.Solve()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("solved ν=%d (N=%d sequences) with method %s in %d iterations\n",
		chainLen, model.Dim(), sol.Method, sol.Iterations)
	fmt.Printf("mean population fitness λ = %.6f\n", sol.Lambda)
	fmt.Printf("master sequence concentration x₀ = %.4f\n", sol.MasterConcentration())
	fmt.Println("cumulative concentrations of the first error classes:")
	for k := 0; k <= 5; k++ {
		fmt.Printf("  [Γ%d] = %.6f\n", k, sol.Gamma[k])
	}

	// The same model above the error threshold: order collapses into
	// near-random replication.
	hot, err := quasispecies.UniformMutation(chainLen, 0.06)
	if err != nil {
		log.Fatal(err)
	}
	model2, err := quasispecies.New(hot, land)
	if err != nil {
		log.Fatal(err)
	}
	sol2, err := model2.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nabove the error threshold (p = 0.06): x₀ = %.3g — the ordered population is gone\n",
		sol2.MasterConcentration())
}
