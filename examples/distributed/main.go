// Distributed-memory solving: the direction the paper's conclusions name
// as future work ("the main limiting factor … is not any more the runtime,
// but the memory requirements"). The cluster package partitions the state
// vector across P simulated nodes with private memory; Fmmp's butterfly
// needs exactly log₂P block exchanges per matvec (a hypercube pattern),
// and norms use recursive-doubling allreduces.
//
// The example verifies the distributed answer against the shared-memory
// solver and prints the exact communication bill an MPI port would pay.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"math"

	quasispecies "repro"
	"repro/cluster"
	"repro/internal/landscape"
)

func main() {
	const nu = 16 // 65536 states, instant at any node count
	const p = 0.01

	land, err := landscape.NewRandom(nu, 5, 1, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Shared-memory reference through the public facade.
	mut, err := quasispecies.UniformMutation(nu, p)
	if err != nil {
		log.Fatal(err)
	}
	facadeLand, err := quasispecies.RandomLandscape(nu, 5, 1, 42)
	if err != nil {
		log.Fatal(err)
	}
	model, err := quasispecies.New(mut, facadeLand, quasispecies.WithMethod(quasispecies.MethodFmmp))
	if err != nil {
		log.Fatal(err)
	}
	ref, err := model.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shared-memory reference: λ = %.12f in %d iterations\n\n", ref.Lambda, ref.Iterations)

	fmt.Println("  P   λ (distributed)      matvec bytes   total MB   messages   allreduces")
	for _, nodes := range []int{1, 2, 4, 8, 16} {
		c, err := cluster.NewCluster(nodes, 1<<nu)
		if err != nil {
			log.Fatal(err)
		}
		res, err := c.Solve(p, land, cluster.SolveOptions{Tol: 1e-12})
		if err != nil {
			log.Fatal(err)
		}
		if math.Abs(res.Lambda-ref.Lambda) > 1e-9 {
			log.Fatalf("P=%d: distributed λ %.12f disagrees with reference %.12f",
				nodes, res.Lambda, ref.Lambda)
		}
		st := res.Traffic
		fmt.Printf("  %2d  %.12f   %12d   %8.2f   %8d   %10d\n",
			nodes, res.Lambda, c.ExpectedMatvecBytes(),
			float64(st.Bytes)/(1<<20), st.Messages, st.Allreduces)
	}

	fmt.Println("\nper-matvec communication is exactly 8·N·log₂P bytes — the butterfly's")
	fmt.Println("hypercube exchange — while each node stores only N/P + O(1) floats:")
	fmt.Println("memory per node shrinks linearly in P at logarithmic communication cost.")
	for _, nodes := range []int{2, 8, 64, 1024} {
		nuBig := 34 // a 2^34 problem: 128 GiB of state, beyond one machine
		perNode := float64(8*(int64(1)<<uint(nuBig))/int64(nodes)) / (1 << 30)
		comm := float64(8*(int64(1)<<uint(nuBig))*int64(log2(nodes))) / (1 << 30)
		fmt.Printf("  ν=%d on P=%4d nodes: %7.2f GiB state per node, %6.1f GiB moved per matvec\n",
			nuBig, nodes, perNode, comm)
	}
}

func log2(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	return l
}
