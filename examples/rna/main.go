// Four-letter RNA alphabet: the Section 5.2 extension beyond the binary
// model. A sequence of L nucleotides over {A, C, G, U} is a Kronecker
// group structure with 4×4 single-nucleotide substitution factors, so the
// same fast transform solves the 4^L-dimensional problem.
//
// The example compares Jukes–Cantor and Kimura substitution models on the
// same fitness landscape, exercises a hypervariable site, and uses the
// four-letter analogue of the exact class reduction to push the chain
// length to L = 300 nucleotides — 4^300 ≈ 10^180 sequences.
//
//	go run ./examples/rna
package main

import (
	"fmt"
	"log"

	"repro/internal/dense"
	"repro/rna"
)

func main() {
	const l = 8 // 4^8 = 65536 sequences, instant

	// A single-peak landscape over nucleotide distance: the master RNA
	// replicates 3× faster.
	land, err := rna.SinglePeakLandscape(l, 3, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Jukes–Cantor: every substitution equally likely.
	jc, err := rna.JukesCantor(0.02)
	if err != nil {
		log.Fatal(err)
	}
	jcModel, err := rna.New(l, jc, land)
	if err != nil {
		log.Fatal(err)
	}
	jcSol, err := jcModel.SolveAuto(rna.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Jukes–Cantor  (p=0.02):  λ = %.6f  [Γ0] = %.4f  (reduced solve: %v)\n",
		jcSol.Lambda, jcSol.Gamma[0], jcSol.Reduced)

	// Kimura: transitions (A↔G, C↔U) 8× likelier than transversions —
	// the textbook biological bias. Same overall rate per position.
	const p = 0.02
	alpha := p * 0.8 // transition share
	beta := p * 0.1  // each transversion
	k2, err := rna.Kimura(alpha, beta)
	if err != nil {
		log.Fatal(err)
	}
	k2Model, err := rna.New(l, k2, land)
	if err != nil {
		log.Fatal(err)
	}
	k2Sol, err := k2Model.Solve(rna.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Kimura (α=%.3f β=%.3f): λ = %.6f  [Γ0] = %.4f  (full 4^%d solve, %d iterations)\n",
		alpha, beta, k2Sol.Lambda, k2Sol.Gamma[0], l, k2Sol.Iterations)

	// Transition bias shows up in the mutant cloud: the A→G single mutant
	// is populated ~8× the A→C mutant at the same position.
	g0, _ := rna.Encode("GAAAAAAA")
	c0, _ := rna.Encode("CAAAAAAA")
	fmt.Printf("transition/transversion mutant ratio at position 0: %.2f (α/β = %.1f)\n",
		k2Sol.Concentrations[g0]/k2Sol.Concentrations[c0], alpha/beta)

	// Hypervariable site: position 3 mutates 10× faster.
	subs := make([]*dense.Matrix, l)
	fast, _ := rna.JukesCantor(0.1)
	for i := range subs {
		subs[i] = jc
	}
	subs[3] = fast
	hvModel, err := rna.NewPerPosition(subs, land)
	if err != nil {
		log.Fatal(err)
	}
	hvSol, err := hvModel.Solve(rna.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	m3, _ := rna.Encode("AAACAAAA") // mutant at the hypervariable site
	m0, _ := rna.Encode("CAAAAAAA") // mutant at a stable site
	fmt.Printf("hypervariable site: x(mutant@3)/x(mutant@0) = %.1f\n",
		hvSol.Concentrations[m3]/hvSol.Concentrations[m0])

	// Long chains through the exact class reduction: L = 300 nucleotides.
	const long = 300
	phi := make([]float64, long+1)
	phi[0] = 3
	for k := 1; k <= long; k++ {
		phi[k] = 1
	}
	for _, pLong := range []float64{0.001, 0.006} {
		sol, err := rna.SolveReduced(long, pLong, phi)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("L = %d nt (4^%d ≈ 10^%d sequences), p = %.3f:  λ = %.4f  [Γ0] = %.4g\n",
			long, long, long*602/1000, pLong, sol.Lambda, sol.Gamma[0])
	}
	fmt.Println("(the error threshold survives the alphabet change: [Γ0] collapses between the two rates)")
}
