// Kronecker landscapes: solve a chain length far beyond 2^ν storage by
// exploiting the Section 5.2 decoupling. "The quasispecies model for a
// chain length ν = 100 (which occurs in existing viruses of interest) is
// by far out of reach of any of the currently available computational
// technology. However, for a Kronecker fitness landscape with g = 4 it
// could be reduced to four subproblems of dimension 2^25."
//
// This example builds ν = 100 from five 20-bit blocks (keeping the run in
// the hundreds of milliseconds; switch to -gbits 25 -blocks 4 for the
// paper's exact decomposition if you have a few GB of RAM to spare),
// solves each block with the fast Pi(Fmmp) solver and extracts exact
// aggregate information about the 2^100-dimensional eigenvector.
//
//	go run ./examples/kronecker
//	go run ./examples/kronecker -gbits 25 -blocks 4
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	quasispecies "repro"
)

func main() {
	var (
		gbits  = flag.Int("gbits", 20, "positions per block")
		blocks = flag.Int("blocks", 5, "number of independent blocks")
		p      = flag.Float64("p", 0.002, "per-position error rate")
	)
	flag.Parse()

	// Each block carries a single-peak fitness factor: the block's
	// error-free segment is 1.15× fitter. The full landscape is the
	// Kronecker product of the factors — 2^ν values described by
	// g·2^(ν/g) numbers.
	factor := make([]float64, 1<<uint(*gbits))
	for i := range factor {
		factor[i] = 1
	}
	factor[0] = 1.15

	specs := make([]quasispecies.KroneckerBlock, *blocks)
	for b := range specs {
		specs[b] = quasispecies.KroneckerBlock{ChainLen: *gbits, ErrorRate: *p, Fitness: factor}
	}

	start := time.Now()
	sol, err := quasispecies.SolveKronecker(specs, quasispecies.WithTolerance(1e-12))
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("solved ν = %d (N = 2^%d ≈ 10^%.0f sequences) in %v\n",
		sol.ChainLen(), sol.ChainLen(), float64(sol.ChainLen())*0.30103, elapsed)
	fmt.Printf("dominant eigenvalue λ = Π λᵢ = %.9f\n", sol.Lambda())
	fmt.Printf("master sequence concentration x₀ = %.6g\n", sol.MasterConcentration())

	gamma := sol.Gamma()
	fmt.Println("\nexact cumulative error-class concentrations of the 2^100-dim eigenvector:")
	for k := 0; k <= 8; k++ {
		fmt.Printf("  [Γ%d] = %.6g\n", k, gamma[k])
	}

	mn, mx := sol.ClassEnvelope()
	fmt.Println("\nper-class concentration envelopes (Section 5.2's threshold diagnostic):")
	for _, k := range []int{0, 1, 2, 5, 10} {
		fmt.Printf("  Γ%-2d  min %.4g   max %.4g\n", k, mn[k], mx[k])
	}

	// Single-sequence access works too (ν ≤ 62 for 64-bit indexing is
	// exceeded here, so query via block structure instead): the
	// concentration of any sequence is the product of its block
	// concentrations, demonstrated here for "one mutation in block 0".
	oneMut, err := quasispecies.SolveKronecker(specs[:1], quasispecies.WithTolerance(1e-12))
	if err != nil {
		log.Fatal(err)
	}
	c1, err := oneMut.Concentration(1)
	if err != nil {
		log.Fatal(err)
	}
	c0 := oneMut.MasterConcentration()
	fmt.Printf("\nwithin one block: x(single mutant)/x(master) = %.4g\n", c1/c0)
}
