// Error threshold: reproduce the phenomenon of Figure 1 — a sharp phase
// transition from an ordered quasispecies to random replication for the
// single-peak landscape, and its absence for the linear landscape.
//
// The example locates p_max for ν = 20 numerically and prints compact
// versions of both panels.
//
//	go run ./examples/errorthreshold
package main

import (
	"fmt"
	"log"

	quasispecies "repro"
)

const chainLen = 20

func main() {
	single, err := quasispecies.SinglePeak(chainLen, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	linear, err := quasispecies.LinearLandscape(chainLen, 2, 1)
	if err != nil {
		log.Fatal(err)
	}

	ps := []float64{0.005, 0.015, 0.025, 0.030, 0.035, 0.040, 0.050, 0.070}

	fmt.Println("single-peak landscape (f0=2, f=1): watch [Γ0] collapse near p ≈ 0.035")
	printPanel(single, ps)

	fmt.Println("\nlinear landscape (f0=2 → fν=1): smooth decay, no threshold")
	printPanel(linear, ps)

	// Bisect the threshold for the single-peak landscape: the point where
	// the master class drops below twice its uniform share.
	lo, hi := 0.01, 0.08
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if ordered(single, mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	fmt.Printf("\nestimated error threshold for ν=%d, f0/f1=2: p_max ≈ %.4f (paper: ≈ 0.035)\n",
		chainLen, (lo+hi)/2)
}

func printPanel(l quasispecies.Landscape, ps []float64) {
	pts, err := quasispecies.ThresholdCurve(l, ps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("     p      [Γ0]      [Γ1]      [Γ2]      [Γ5]      [Γ10]")
	for _, pt := range pts {
		fmt.Printf("  %.3f  %8.5f  %8.5f  %8.5f  %8.5f  %8.5f\n",
			pt.P, pt.Gamma[0], pt.Gamma[1], pt.Gamma[2], pt.Gamma[5], pt.Gamma[10])
	}
}

// ordered reports whether the master error class still dominates clearly
// at error rate p: above the threshold [Γ0] falls to its uniform share
// 2^-ν ≈ 1e-6.
func ordered(l quasispecies.Landscape, p float64) bool {
	pts, err := quasispecies.ThresholdCurve(l, []float64{p})
	if err != nil {
		log.Fatal(err)
	}
	const uniformShare = 1.0 / (1 << chainLen)
	return pts[0].Gamma[0] > 100*uniformShare
}
