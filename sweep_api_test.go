package quasispecies

import (
	"math"
	"testing"
)

func TestThresholdCurveWithWorkersBitIdentical(t *testing.T) {
	land, err := SinglePeak(25, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ps := make([]float64, 18)
	for i := range ps {
		ps[i] = 0.002 + 0.005*float64(i)
	}
	ref, err := ThresholdCurve(land, ps)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []SweepOptions{
		{Workers: 2},
		{Workers: 7},
		{Workers: -1},
		{Workers: 3, WarmStart: true},
	} {
		got, err := ThresholdCurveWith(land, ps, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		for i := range ref {
			if got[i].P != ref[i].P {
				t.Fatalf("%+v: point %d p mismatch", opts, i)
			}
			for k := range ref[i].Gamma {
				want, have := ref[i].Gamma[k], got[i].Gamma[k]
				if opts.WarmStart {
					// Warm starts change the iterate path; agreement is to
					// solver tolerance, not bit-exact.
					if math.Abs(want-have) > 1e-9 {
						t.Fatalf("%+v: point %d class %d: |Δ| = %g", opts, i, k, math.Abs(want-have))
					}
				} else if want != have {
					t.Fatalf("%+v: point %d class %d: %v vs %v (not bit-identical)", opts, i, k, want, have)
				}
			}
		}
	}
}

func TestLocateErrorThresholdWithWorkers(t *testing.T) {
	land, err := SinglePeak(20, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := LocateErrorThreshold(land, 0.001, 0.4, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LocateErrorThresholdWith(land, 0.001, 0.4, 1e-4, SweepOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 2e-4 {
		t.Errorf("k-section p_max = %g, bisection %g", got, want)
	}
}

// The Model caches its Fmmp operator: after the first Solve, a Residual
// check must not rebuild the Θ(N) landscape diagonals (satellite of the
// batched-sweep PR; this is the regression guard).
func TestModelReusesOperatorAcrossSolveAndResidual(t *testing.T) {
	mut, _ := UniformMutation(10, 0.01)
	land, _ := SinglePeak(10, 2, 1)
	model, err := New(mut, land, WithMethod(MethodFmmp))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	r0, err := model.Residual(sol.Lambda, sol.Concentrations)
	if err != nil {
		t.Fatal(err)
	}
	if r0 > 1e-8 {
		t.Errorf("residual %g too large", r0)
	}
	// Warm the scratch, then require allocation-free steady state.
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := model.Residual(sol.Lambda, sol.Concentrations); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Residual allocates %.0f objects per call after warm-up; operator/scratch not cached", allocs)
	}
	// Re-solving must reuse the cached operator and agree exactly.
	sol2, err := model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Lambda != sol.Lambda {
		t.Errorf("re-solve λ = %v, first %v", sol2.Lambda, sol.Lambda)
	}
}

func TestSolveKroneckerWithWorkersMatchesSerial(t *testing.T) {
	blocks := []KroneckerBlock{
		{ChainLen: 4, ErrorRate: 0.01, Fitness: rampFitness(16, 1, 3)},
		{ChainLen: 5, ErrorRate: 0.02, Fitness: rampFitness(32, 1, 2)},
		{ChainLen: 3, ErrorRate: 0.015, Fitness: rampFitness(8, 1, 4)},
	}
	serial, err := SolveKronecker(blocks)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SolveKronecker(blocks, WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	if serial.Lambda() != parallel.Lambda() {
		t.Errorf("parallel λ = %v, serial %v", parallel.Lambda(), serial.Lambda())
	}
	sg, pg := serial.Gamma(), parallel.Gamma()
	for k := range sg {
		if sg[k] != pg[k] {
			t.Errorf("class %d: parallel Γ deviates from serial", k)
		}
	}
}

func rampFitness(n int, lo, hi float64) []float64 {
	f := make([]float64, n)
	for i := range f {
		f[i] = hi - (hi-lo)*float64(i)/float64(n-1)
	}
	return f
}
