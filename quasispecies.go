// Package quasispecies is a fast solver for Eigen's quasispecies model of
// the evolution of virus populations, reproducing Niederbrucker &
// Gansterer, "A Fast Solver for Modeling the Evolution of Virus
// Populations" (SC'11).
//
// A virus of chain length ν is modeled over the N = 2^ν binary sequences;
// the long-term population — the quasispecies — is the dominant
// eigenvector of W = Q·F, where Q is the mutation matrix and F the diagonal
// fitness landscape. The package computes it with the paper's fast
// mutation matrix product (Fmmp), an exact implicit transform with
// Θ(N·log₂N) time and no matrix storage, optionally parallelized over a
// pool of workers that mirrors the paper's GPU kernel structure.
//
// # Quick start
//
//	mut, _ := quasispecies.UniformMutation(20, 0.01)     // ν = 20, p = 0.01
//	land, _ := quasispecies.SinglePeak(20, 2, 1)         // f₀ = 2, fᵢ = 1
//	model, _ := quasispecies.New(mut, land)
//	sol, _ := model.Solve()
//	fmt.Println(sol.Lambda, sol.Gamma[0])                // mean fitness, master-class share
//
// Beyond the general solver the package exposes the paper's structural
// accelerations: the exact (ν+1)×(ν+1) reduction for Hamming-distance
// (error-class) landscapes, and fully decoupled solves for Kronecker
// landscapes that reach chain lengths like ν = 100.
package quasispecies

import (
	"errors"
	"fmt"

	"repro/internal/landscape"
	"repro/internal/mutation"
)

// MaxChainLen is the largest chain length for explicit (2^ν-state)
// problems; Kronecker systems compose longer chains from such blocks.
const MaxChainLen = 62

// ---------------------------------------------------------------------------
// Landscapes

// Landscape is a fitness landscape F = diag(f₀ … f_{N−1}). Construct with
// SinglePeak, LinearLandscape, ClassLandscape, RandomLandscape,
// ExplicitLandscape or FlatLandscape.
type Landscape struct {
	l landscape.Landscape
}

func (l Landscape) valid() bool { return l.l != nil }

// ChainLen returns ν.
func (l Landscape) ChainLen() int { return l.l.ChainLen() }

// Fitness returns fᵢ.
func (l Landscape) Fitness(i uint64) float64 { return l.l.At(i) }

// SinglePeak returns the classic landscape with a single fitter master
// sequence: f₀ = peak, fᵢ = base otherwise (Figure 1 left uses 2 and 1).
func SinglePeak(chainLen int, peak, base float64) (Landscape, error) {
	l, err := landscape.NewSinglePeak(chainLen, peak, base)
	if err != nil {
		return Landscape{}, err
	}
	return Landscape{l}, nil
}

// LinearLandscape returns fᵢ = f0 − (f0−fEnd)·dH(i,0)/ν (Figure 1 right).
func LinearLandscape(chainLen int, f0, fEnd float64) (Landscape, error) {
	l, err := landscape.NewLinear(chainLen, f0, fEnd)
	if err != nil {
		return Landscape{}, err
	}
	return Landscape{l}, nil
}

// ClassLandscape returns the general error-class landscape fᵢ = ϕ(dH(i,0))
// from the table phi of length ν+1.
func ClassLandscape(phi []float64) (Landscape, error) {
	l, err := landscape.NewErrorClass(phi)
	if err != nil {
		return Landscape{}, err
	}
	return Landscape{l}, nil
}

// RandomLandscape returns the paper's random landscape (Eq. 13):
// f₀ = c and fᵢ = σ·(η(i)+0.5) with η uniform on [0,1), deterministic in
// the seed. Requires 0 < σ < c/2.
func RandomLandscape(chainLen int, c, sigma float64, seed uint64) (Landscape, error) {
	l, err := landscape.NewRandom(chainLen, c, sigma, seed)
	if err != nil {
		return Landscape{}, err
	}
	return Landscape{l}, nil
}

// ExplicitLandscape returns the fully general landscape from an explicit
// fitness vector of length 2^ν (all entries positive).
func ExplicitLandscape(fitness []float64) (Landscape, error) {
	l, err := landscape.NewVector(fitness)
	if err != nil {
		return Landscape{}, err
	}
	return Landscape{l}, nil
}

// FlatLandscape returns fᵢ = value for all i; its quasispecies is the
// uniform distribution for every error rate.
func FlatLandscape(chainLen int, value float64) (Landscape, error) {
	l, err := landscape.NewUniform(chainLen, value)
	if err != nil {
		return Landscape{}, err
	}
	return Landscape{l}, nil
}

// IsClassBased reports whether the landscape depends only on the Hamming
// distance to the master sequence, in which case Solve may use the exact
// (ν+1)×(ν+1) reduction.
func (l Landscape) IsClassBased() bool {
	if !l.valid() {
		return false
	}
	_, ok := landscape.ClassBased(l.l)
	return ok
}

// ---------------------------------------------------------------------------
// Mutation processes

// Mutation is a mutation matrix Q in implicit Kronecker form. Construct
// with UniformMutation, PerSiteMutation or SiteFactors.
type Mutation struct {
	q *mutation.Process
}

func (m Mutation) valid() bool { return m.q != nil }

// ChainLen returns ν.
func (m Mutation) ChainLen() int { return m.q.ChainLen() }

// UniformMutation returns the standard quasispecies process: every
// position mutates independently with the same error rate 0 < p ≤ ½.
func UniformMutation(chainLen int, p float64) (Mutation, error) {
	q, err := mutation.NewUniform(chainLen, p)
	if err != nil {
		return Mutation{}, err
	}
	return Mutation{q}, nil
}

// PerSiteMutation returns a process with an independent symmetric error
// rate per position: position k flips with probability rates[k]. This is
// the simplest of the generalized processes of Section 2.2.
func PerSiteMutation(rates []float64) (Mutation, error) {
	factors := make([]mutation.Factor2, len(rates))
	for k, p := range rates {
		if !(p > 0 && p <= 0.5) {
			return Mutation{}, fmt.Errorf("quasispecies: rate[%d] = %g outside (0, 1/2]", k, p)
		}
		factors[k] = mutation.UniformFactor(p)
	}
	q, err := mutation.NewPerSite(factors)
	if err != nil {
		return Mutation{}, err
	}
	return Mutation{q}, nil
}

// SiteFactor is a general 2×2 column-stochastic single-position process:
// Stay0 is the probability that a 0 stays 0 (so a 0→1 mutation has
// probability 1−Stay0) and Stay1 that a 1 stays 1. Asymmetric factors
// model strand-biased mutation.
type SiteFactor struct {
	Stay0, Stay1 float64
}

// GeneralMutation returns a process from arbitrary per-position factors —
// the full generality of Eq. 7 with position-dependent, asymmetric rates.
func GeneralMutation(factors []SiteFactor) (Mutation, error) {
	fs := make([]mutation.Factor2, len(factors))
	for k, f := range factors {
		if f.Stay0 < 0 || f.Stay0 > 1 || f.Stay1 < 0 || f.Stay1 > 1 {
			return Mutation{}, fmt.Errorf("quasispecies: factor %d probabilities outside [0,1]", k)
		}
		fs[k] = mutation.Factor2{A: f.Stay0, B: 1 - f.Stay1, C: 1 - f.Stay0, D: f.Stay1}
	}
	q, err := mutation.NewPerSite(fs)
	if err != nil {
		return Mutation{}, err
	}
	return Mutation{q}, nil
}

// ErrInvalidModel is returned by New for inconsistent inputs.
var ErrInvalidModel = errors.New("quasispecies: invalid model")
