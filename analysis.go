package quasispecies

import (
	"fmt"

	"repro/internal/resolution"
)

// Multi-resolution analysis of solved distributions — the "concentrations
// at various resolution levels" direction from the paper's conclusions.

// SequenceConcentration pairs a sequence with its stationary concentration.
type SequenceConcentration struct {
	Sequence      uint64
	Concentration float64
}

// TopSequences returns the k most concentrated sequences of the solution
// in descending order. It requires a materialized concentration vector
// (always present except for reduced solves of very long chains).
func (s *Solution) TopSequences(k int) ([]SequenceConcentration, error) {
	if s.Concentrations == nil {
		return nil, fmt.Errorf("%w: no materialized concentrations (long-chain reduced solve); "+
			"use Gamma for class-level information", ErrInvalidModel)
	}
	top := resolution.TopK(s.Concentrations, k)
	out := make([]SequenceConcentration, len(top))
	for i, e := range top {
		out[i] = SequenceConcentration{Sequence: e.Sequence, Concentration: e.Concentration}
	}
	return out, nil
}

// PositionAnalysis summarizes the solution position by position.
type PositionAnalysis struct {
	// MutationProbability[k] is P(position k differs from the master) in
	// the stationary population.
	MutationProbability []float64
	// Covariance[j][k] is Cov(position j mutated, position k mutated):
	// positive values indicate linked positions.
	Covariance [][]float64
	// Consensus is the per-position majority sequence; below the error
	// threshold it recovers the master sequence.
	Consensus uint64
}

// AnalyzePositions computes per-position marginals, pairwise covariances
// and the consensus sequence from the solution, using one Walsh–Hadamard
// transform of the distribution (Θ(N·log₂N)).
func (s *Solution) AnalyzePositions() (*PositionAnalysis, error) {
	if s.Concentrations == nil {
		return nil, fmt.Errorf("%w: no materialized concentrations", ErrInvalidModel)
	}
	m, err := resolution.WalshMoments(s.Concentrations)
	if err != nil {
		return nil, err
	}
	pa := &PositionAnalysis{MutationProbability: m.P1}
	pa.Covariance = make([][]float64, m.Nu)
	for j := 0; j < m.Nu; j++ {
		pa.Covariance[j] = make([]float64, m.Nu)
		for k := 0; k < m.Nu; k++ {
			pa.Covariance[j][k] = m.Covariance(j, k)
		}
	}
	for k, p := range m.P1 {
		if p > 0.5 {
			pa.Consensus |= 1 << uint(k)
		}
	}
	return pa, nil
}

// CoarseDistribution aggregates the solution over blocks of 2^level
// consecutive sequences — the hierarchical resolution pyramid. Level 0 is
// the full distribution; level ν is the total mass 1.
func (s *Solution) CoarseDistribution(level int) ([]float64, error) {
	if s.Concentrations == nil {
		return nil, fmt.Errorf("%w: no materialized concentrations", ErrInvalidModel)
	}
	return resolution.Coarsen(s.Concentrations, level)
}
