package quasispecies

import (
	"context"

	"repro/internal/core"
)

// SolveContext is Solve with cooperative cancellation: the iteration
// checks ctx between residual evaluations and aborts with ctx.Err() when
// the context is cancelled or times out. Large-ν solves can run for
// minutes; this is the supported way to bound them.
//
// The reduced method completes in microseconds and is not interruptible;
// Lanczos and Arnoldi check between restart cycles via the same hook.
func (mo *Model) SolveContext(ctx context.Context) (*Solution, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	method := mo.method
	if method == MethodAuto {
		if _, ok := mo.mut.q.Uniform(); ok && mo.land.IsClassBased() {
			method = MethodReduced
		} else {
			method = MethodFmmp
		}
	}
	if method != MethodFmmp && method != MethodXmvp {
		// Reduced solves are instant; Krylov methods run few, long cycles.
		// All still honor an already-cancelled context (checked above).
		return mo.Solve()
	}

	op, err := mo.buildOperator(method)
	if err != nil {
		return nil, err
	}
	popts := core.PowerOptions{
		Tol: mo.effectiveTol(), MaxIter: mo.maxIter,
		Start: core.FitnessStart(mo.land.l),
		Dev:   mo.dev,
		Monitor: func(iter int, lambda, residual float64) bool {
			return ctx.Err() == nil
		},
	}
	if mo.useShift {
		popts.Shift = core.ConservativeShift(mo.mut.q, mo.land.l)
	}
	res, err := core.PowerIteration(op, popts)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, err
	}
	return mo.finishSolution(res.Lambda, res.Vector, res.Iterations, res.Residual, method)
}

// buildOperator constructs the implicit operator for power-iteration
// methods.
func (mo *Model) buildOperator(method Method) (core.Operator, error) {
	switch method {
	case MethodXmvp:
		return mo.buildXmvpOperator()
	default:
		return core.NewFmmpOperator(mo.mut.q, mo.land.l, core.Right, mo.dev)
	}
}
