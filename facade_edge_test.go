package quasispecies

import (
	"math"
	"testing"

	"repro/internal/vec"
)

func TestLinearLandscapeFacade(t *testing.T) {
	l, err := LinearLandscape(10, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if l.Fitness(0) != 2 {
		t.Error("f₀ wrong")
	}
	if math.Abs(l.Fitness(1<<10-1)-1) > 1e-14 {
		t.Error("f at max distance wrong")
	}
	if !l.IsClassBased() {
		t.Error("linear landscape must be class based")
	}
	if _, err := LinearLandscape(5, 0, 1); err == nil {
		t.Error("non-positive fitness must be rejected")
	}
	// Solves through the reduction (Figure 1 right panel path).
	mut, _ := UniformMutation(10, 0.02)
	model, _ := New(mut, l)
	sol, err := model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Method != MethodReduced {
		t.Errorf("method = %v", sol.Method)
	}
}

func TestClassLandscapeFacade(t *testing.T) {
	phi := []float64{3, 2, 1, 1, 1}
	l, err := ClassLandscape(phi)
	if err != nil {
		t.Fatal(err)
	}
	if l.ChainLen() != 4 || l.Fitness(0) != 3 || l.Fitness(0b11) != 1 {
		t.Error("class landscape accessors wrong")
	}
	if _, err := ClassLandscape([]float64{1, -1}); err == nil {
		t.Error("negative ϕ must be rejected")
	}
	if _, err := ClassLandscape(nil); err == nil {
		t.Error("empty ϕ must be rejected")
	}
}

func TestExplicitLandscapeFacade(t *testing.T) {
	f := []float64{1, 2, 3, 4}
	l, err := ExplicitLandscape(f)
	if err != nil {
		t.Fatal(err)
	}
	if l.ChainLen() != 2 || l.Fitness(3) != 4 {
		t.Error("explicit landscape accessors wrong")
	}
	if _, err := ExplicitLandscape([]float64{1, 2, 3}); err == nil {
		t.Error("non-power-of-two length must be rejected")
	}
	// Fully general landscapes go through the fast solver.
	mut, _ := UniformMutation(2, 0.1)
	model, _ := New(mut, l)
	sol, err := model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Method != MethodFmmp {
		t.Errorf("method = %v, want Fmmp for an unstructured landscape", sol.Method)
	}
}

func TestLocateErrorThresholdFacade(t *testing.T) {
	l, _ := SinglePeak(16, 2, 1)
	located, err := LocateErrorThreshold(l, 0.005, 0.1, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	theory, err := TheoreticalErrorThreshold(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(located-theory) > 0.01 {
		t.Errorf("located %g vs theory %g", located, theory)
	}
	if _, err := LocateErrorThreshold(Landscape{}, 0.01, 0.1, 1e-4); err == nil {
		t.Error("zero-value landscape must be rejected")
	}
	if _, err := TheoreticalErrorThreshold(0.5, 16); err == nil {
		t.Error("σ ≤ 1 must be rejected")
	}
}

func TestWithMaxIterationsEnforced(t *testing.T) {
	mut, _ := UniformMutation(10, 0.04)
	land, _ := SinglePeak(10, 2, 1)
	model, err := New(mut, land,
		WithMethod(MethodFmmp), WithMaxIterations(2), WithTolerance(1e-14))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.Solve(); err == nil {
		t.Error("2-iteration budget near the threshold must fail")
	}
}

func TestMasterConcentrationGammaOnly(t *testing.T) {
	s := &Solution{Gamma: []float64{0.7, 0.2, 0.1}}
	if s.MasterConcentration() != 0.7 {
		t.Error("Γ-only master concentration must come from [Γ0]")
	}
}

func TestSaveFileFailsOnBadPath(t *testing.T) {
	sol := &Solution{Lambda: 1, Gamma: []float64{1}}
	if err := sol.SaveFile("/nonexistent-dir/x.ckpt"); err == nil {
		t.Error("unwritable path must error")
	}
}

func TestEvolveValidation(t *testing.T) {
	mut, _ := UniformMutation(6, 0.02)
	land, _ := SinglePeak(6, 2, 1)
	model, _ := New(mut, land)
	if _, err := model.Evolve(nil, -1, EvolveOptions{}); err == nil {
		t.Error("negative horizon must be rejected")
	}
	if _, err := model.Evolve(make([]float64, 3), 1, EvolveOptions{}); err == nil {
		t.Error("wrong x0 length must be rejected")
	}
	if _, err := model.MeanFitness(make([]float64, 3)); err == nil {
		t.Error("wrong state length must be rejected")
	}
}

func TestEvolveCustomStart(t *testing.T) {
	mut, _ := UniformMutation(6, 0.02)
	land, _ := SinglePeak(6, 2, 1)
	model, _ := New(mut, land)
	x0 := make([]float64, 64)
	for i := range x0 {
		x0[i] = 1.0 / 64 // start at the uniform distribution
	}
	tr, err := model.Evolve(x0, 30, EvolveOptions{Snapshots: 2})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if d := vec.DistInf(tr.Final(), sol.Concentrations); d > 1e-6 {
		t.Errorf("uniform start converges to the same quasispecies; deviation %g", d)
	}
}

func TestResidualValidation(t *testing.T) {
	mut, _ := UniformMutation(6, 0.02)
	land, _ := SinglePeak(6, 2, 1)
	model, _ := New(mut, land)
	if _, err := model.Residual(1, make([]float64, 3)); err == nil {
		t.Error("wrong vector length must be rejected")
	}
	sol, _ := model.Solve()
	r, err := model.Residual(sol.Lambda, sol.Concentrations)
	if err != nil {
		t.Fatal(err)
	}
	if r > 1e-9 {
		t.Errorf("residual of the solution %g", r)
	}
}

func TestKroneckerErrorPaths(t *testing.T) {
	fit := []float64{2, 1}
	if _, err := SolveKronecker([]KroneckerBlock{
		{ChainLen: 1, ErrorRate: 0.9, Fitness: fit},
	}); err == nil {
		t.Error("invalid block error rate must be rejected")
	}
	if _, err := SolveKronecker([]KroneckerBlock{
		{ChainLen: 1, ErrorRate: 0.01, Fitness: []float64{1, -1}},
	}); err == nil {
		t.Error("negative block fitness must be rejected")
	}
	if _, err := SolveKronecker([]KroneckerBlock{
		{ChainLen: 1, ErrorRate: 0.01, Fitness: fit},
	}, WithTolerance(-1)); err == nil {
		t.Error("invalid option must surface")
	}
	// ν > 62 total: implicit aggregates still work, per-sequence access fails.
	var blocks []KroneckerBlock
	for i := 0; i < 9; i++ {
		f := make([]float64, 1<<8)
		for j := range f {
			f[j] = 1
		}
		f[0] = 1.2
		blocks = append(blocks, KroneckerBlock{ChainLen: 8, ErrorRate: 0.001, Fitness: f})
	}
	sol, err := SolveKronecker(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if sol.ChainLen() != 72 {
		t.Fatalf("ν = %d", sol.ChainLen())
	}
	if _, err := sol.Concentration(5); err == nil {
		t.Error("per-sequence access beyond 62 bits must be refused")
	}
	if sol.MasterConcentration() <= 0 {
		t.Error("master concentration must remain available")
	}
	if len(sol.Gamma()) != 73 {
		t.Error("Γ must cover all 73 classes")
	}
}

func TestWorkersAuto(t *testing.T) {
	mut, _ := UniformMutation(8, 0.01)
	land, _ := RandomLandscape(8, 5, 1, 1)
	model, err := New(mut, land, WithMethod(MethodFmmp), WithWorkers(0)) // all cores
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.Solve(); err != nil {
		t.Fatal(err)
	}
}
