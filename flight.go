package quasispecies

import (
	"flag"
	"os"
	"time"

	"repro/internal/obs"
	"repro/internal/perf"
)

// Flight recording: the black box of a solver run, behind the -flight
// flag of every CLI. StartFlight stamps a run manifest (run ID, build
// revision, flag set, GOMAXPROCS, NUMA topology, AVX2/HWC availability,
// p-grid), threads the run ID through span profiles, trace rows, ledger
// entries and /metrics, retains recent history in bounded rings, and
// starts the numerical-health watchdog. On stalls, NaN residuals, slow
// phases, solver errors, worker panics, or SIGUSR1/SIGQUIT, a diagnostic
// bundle — manifest, ring dumps, goroutine dump, profile table, Chrome
// trace — lands as a tar-friendly directory under FlightOptions.Dir.
//
// With no flight active the solver's hot paths pay one atomic pointer
// load at the existing hook points and allocate nothing; numerics are
// bit-identical either way.

// FlightOptions configures StartFlight. The zero value works: bundles
// under "flight-bundles", watchdog defaults, baseline from the committed
// PERF ledger when present.
type FlightOptions struct {
	// Dir receives diagnostic bundles ("" selects "flight-bundles").
	Dir string
	// Tool and Args identify the invoking command in the manifest. Flags
	// overrides the recorded flag set; nil collects the resolved values of
	// the standard flag.CommandLine when it has been parsed.
	Tool  string
	Args  []string
	Flags map[string]string
	// Workload parameters recorded in the manifest (zero values omitted).
	Nu      int
	Method  string
	Workers int
	PGrid   []float64
	// Watchdog tuning; zero values select the obs defaults (30s stall
	// wall, 5000 stalled residual checks, 500ms scan interval), negative
	// values disable the respective criterion (StallWall, StallChecks) or
	// the watchdog goroutine (Interval).
	StallWall        time.Duration
	StallChecks      int
	WatchdogInterval time.Duration
	// TraceEvery thins Step rows entering the trace ring (0 selects 16).
	TraceEvery int
	// LedgerPath/LedgerLabel locate the PERF-ledger baseline for the
	// slow-phase detector; "" selects the committed ledger
	// (results/PERF_ledger.jsonl) when the file exists, and a missing or
	// unreadable ledger just disables the detector.
	LedgerPath  string
	LedgerLabel string
	// DisableSignals skips the SIGUSR1/SIGQUIT bundle-dump handler.
	DisableSignals bool
}

// Flight is an active flight recording. Create with StartFlight; Stop it
// when the run ends (dumped bundles and rings stay readable).
type Flight struct {
	f *obs.FlightRecorder
	// prof is the span profiler StartFlight installed because none was
	// recording; nil when the caller's own profile (e.g. -spans) was
	// already live.
	prof *SpanProfile
}

// StartFlight begins a flight recording: manifest, rings, watchdog,
// signal handler, batch panic hook. When no span profile is recording it
// installs a bounded one so the span ring has a feed; a profile the
// caller started earlier (e.g. -spans) is reused and stamped with the
// run ID instead.
func StartFlight(opts FlightOptions) *Flight {
	if opts.Flags == nil && flag.Parsed() {
		opts.Flags = make(map[string]string)
		flag.VisitAll(func(f *flag.Flag) { opts.Flags[f.Name] = f.Value.String() })
	}
	if opts.Tool != "" && opts.Args == nil && len(os.Args) > 1 {
		opts.Args = os.Args[1:]
	}
	manifest := obs.NewManifest(obs.ManifestWorkload{
		Tool: opts.Tool, Args: opts.Args, Flags: opts.Flags,
		Nu: opts.Nu, Method: opts.Method, Workers: opts.Workers, PGrid: opts.PGrid,
	})
	fl := &Flight{}
	if obs.InstalledProfiler() == nil {
		// A modest event bound: the flight needs a span feed for its ring
		// and a profile table for bundles, not the full ~1M-event
		// timeline a -spans run keeps.
		fl.prof = StartSpanProfile(1 << 16)
	}
	fl.f = obs.StartFlight(manifest, obs.FlightConfig{
		Dir:        opts.Dir,
		TraceEvery: opts.TraceEvery,
		Watchdog: obs.WatchdogConfig{
			Interval:    opts.WatchdogInterval,
			StallWall:   opts.StallWall,
			StallChecks: opts.StallChecks,
			Baseline:    flightBaseline(opts.LedgerPath, opts.LedgerLabel),
		},
		DisableSignals: opts.DisableSignals,
	})
	return fl
}

// flightBaseline loads the slow-phase baseline shares from the PERF
// ledger: the latest record for label (any when ""), phases as fractions
// of its wall time. Missing or unreadable ledgers disable the detector.
func flightBaseline(path, label string) []obs.PhaseShare {
	if path == "" {
		path = perf.DefaultLedgerPath
	}
	recs, err := perf.Read(path)
	if err != nil || len(recs) == 0 {
		return nil
	}
	rec, ok := perf.Latest(recs, label)
	if !ok || rec.WallSeconds <= 0 {
		return nil
	}
	out := make([]obs.PhaseShare, 0, len(rec.Phases))
	for _, p := range rec.Phases {
		out = append(out, obs.PhaseShare{
			Layer: p.Layer, Name: p.Name, Share: p.TotalSeconds / rec.WallSeconds,
		})
	}
	return out
}

// RunID returns the run identifier stamped in the manifest.
func (fl *Flight) RunID() string { return fl.f.RunID() }

// Observer returns a per-solve convergence observer for the labelled
// solve: it feeds the flight's trace ring and registers the solve with
// the watchdog. Plug it into WithObserver or tee it next to a trace
// recorder with TeeSolveObservers.
func (fl *Flight) Observer(label string) SolveObserver { return fl.f.Observer(label) }

// NoteDecision retains one method/escalation decision row in the flight's
// decision ring (kind e.g. "point", label e.g. "p=0.0312").
func (fl *Flight) NoteDecision(kind, label, detail string, iter int) {
	fl.f.NoteDecision(kind, label, detail, iter)
}

// DumpOnError dumps a diagnostic bundle when err is (or wraps) a
// ConvergenceError or GapUnresolvedError, writing the error's lossless
// JSON form into the bundle. Returns the bundle directory and whether a
// bundle was dumped.
func (fl *Flight) DumpOnError(err error) (string, bool) { return fl.f.DumpOnError(err) }

// Dump writes a diagnostic bundle now (reason "manual") and returns its
// directory.
func (fl *Flight) Dump() (string, error) {
	return fl.f.DumpBundle("manual", nil)
}

// Bundles returns the directories of the bundles dumped so far.
func (fl *Flight) Bundles() []string { return fl.f.Bundles() }

// Stop ends the recording, releasing the watchdog, signal handler, and
// panic hook — and the span profiler, when StartFlight installed one.
func (fl *Flight) Stop() {
	fl.f.Stop()
	if fl.prof != nil {
		fl.prof.Stop()
	}
}

// TeeSolveObservers combines solve observers: every Step/Event (and
// method report) goes to each non-nil observer. Returns nil when both are
// nil, and the single observer unchanged when only one is non-nil, so
// callers can tee unconditionally.
func TeeSolveObservers(a, b SolveObserver) SolveObserver {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &teeObserver{a: a, b: b}
}

type teeObserver struct{ a, b SolveObserver }

func (t *teeObserver) Step(iter int, lambda, residual float64) {
	t.a.Step(iter, lambda, residual)
	t.b.Step(iter, lambda, residual)
}

func (t *teeObserver) Event(event string, iter int, lambda, residual float64) {
	t.a.Event(event, iter, lambda, residual)
	t.b.Event(event, iter, lambda, residual)
}

// Method forwards the solver's gear report to the observers that accept
// it (the optional extension obs.TraceRecorder and flight recorders
// implement).
func (t *teeObserver) Method(kind string) {
	if m, ok := t.a.(interface{ Method(string) }); ok {
		m.Method(kind)
	}
	if m, ok := t.b.(interface{ Method(string) }); ok {
		m.Method(kind)
	}
}
