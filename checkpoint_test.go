package quasispecies

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/vec"
)

func TestSolutionRoundTrip(t *testing.T) {
	sol := solvedSinglePeak(t, 10, 0.01)
	var buf bytes.Buffer
	if err := sol.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSolution(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Lambda != sol.Lambda || got.Iterations != sol.Iterations || got.Residual != sol.Residual {
		t.Error("scalar fields not preserved")
	}
	if vec.DistInf(got.Gamma, sol.Gamma) != 0 {
		t.Error("Γ not preserved")
	}
	if vec.DistInf(got.Concentrations, sol.Concentrations) != 0 {
		t.Error("concentrations not preserved")
	}
	// The restored solution supports the analysis API.
	top, err := got.TopSequences(1)
	if err != nil || top[0].Sequence != 0 {
		t.Errorf("restored solution unusable: %v %v", top, err)
	}
}

func TestSolutionFileRoundTrip(t *testing.T) {
	sol := solvedSinglePeak(t, 8, 0.02)
	path := filepath.Join(t.TempDir(), "qs.ckpt")
	if err := sol.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSolutionFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Lambda-sol.Lambda) != 0 {
		t.Error("λ not preserved through the file")
	}
	if _, err := LoadSolutionFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file must error")
	}
}

func TestGammaOnlySolutionRoundTrip(t *testing.T) {
	// Long-chain reduced solves carry no concentration vector.
	sol := &Solution{
		Lambda:   1.5,
		Gamma:    []float64{0.6, 0.3, 0.1},
		Residual: 1e-14,
	}
	var buf bytes.Buffer
	if err := sol.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSolution(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Concentrations != nil {
		t.Error("Γ-only checkpoint must restore without concentrations")
	}
	if vec.DistInf(got.Gamma, sol.Gamma) != 0 {
		t.Error("Γ not preserved")
	}
}

func TestArnoldiMethodThroughFacade(t *testing.T) {
	const nu = 8
	// Asymmetric process: Lanczos is inapplicable, Arnoldi is the point.
	factors := make([]SiteFactor, nu)
	for k := range factors {
		factors[k] = SiteFactor{Stay0: 0.99, Stay1: 0.96}
	}
	mut, err := GeneralMutation(factors)
	if err != nil {
		t.Fatal(err)
	}
	land, _ := RandomLandscape(nu, 5, 1, 11)

	power, err := mustSolve(t, mut, land, WithMethod(MethodFmmp))
	if err != nil {
		t.Fatal(err)
	}
	arnoldi, err := mustSolve(t, mut, land, WithMethod(MethodArnoldi))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(power.Lambda-arnoldi.Lambda) > 1e-8 {
		t.Errorf("Arnoldi λ = %.14g vs power %.14g", arnoldi.Lambda, power.Lambda)
	}
	if d := vec.DistInf(power.Concentrations, arnoldi.Concentrations); d > 1e-6 {
		t.Errorf("concentrations deviate by %g", d)
	}
	if arnoldi.Method != MethodArnoldi {
		t.Errorf("method = %v", arnoldi.Method)
	}
}

func TestAdaptiveDefaultToleranceSolves(t *testing.T) {
	// Without WithTolerance, large problems must converge instead of
	// stalling at an unattainable 1e-12.
	mut, _ := UniformMutation(14, 0.01)
	land, _ := RandomLandscape(14, 5, 1, 13)
	sol, err := mustSolve(t, mut, land, WithMethod(MethodFmmp))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Residual <= 0 {
		t.Error("no residual recorded")
	}
}
