package quasispecies

import (
	"math"
	"testing"
)

func solvedSinglePeak(t *testing.T, nu int, p float64) *Solution {
	t.Helper()
	mut, err := UniformMutation(nu, p)
	if err != nil {
		t.Fatal(err)
	}
	land, err := SinglePeak(nu, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	model, err := New(mut, land)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestTopSequences(t *testing.T) {
	sol := solvedSinglePeak(t, 10, 0.01)
	top, err := sol.TopSequences(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 {
		t.Fatalf("got %d entries", len(top))
	}
	if top[0].Sequence != 0 {
		t.Errorf("most concentrated sequence is %d, want the master", top[0].Sequence)
	}
	if top[0].Concentration <= top[1].Concentration {
		t.Error("not descending")
	}
	// Positions 2 and 3 must be single mutants (weight 1) by symmetry.
	for _, e := range top[1:] {
		w := 0
		for b := e.Sequence; b != 0; b &= b - 1 {
			w++
		}
		if w != 1 {
			t.Errorf("runner-up %b has weight %d, want 1", e.Sequence, w)
		}
	}
}

func TestAnalyzePositions(t *testing.T) {
	sol := solvedSinglePeak(t, 10, 0.01)
	pa, err := sol.AnalyzePositions()
	if err != nil {
		t.Fatal(err)
	}
	if len(pa.MutationProbability) != 10 {
		t.Fatalf("got %d marginals", len(pa.MutationProbability))
	}
	// Exchangeable positions on the single peak: identical marginals.
	for k := 1; k < 10; k++ {
		if math.Abs(pa.MutationProbability[k]-pa.MutationProbability[0]) > 1e-9 {
			t.Errorf("marginals differ across positions: %v", pa.MutationProbability)
		}
	}
	if pa.Consensus != 0 {
		t.Errorf("consensus %b, want the master sequence below threshold", pa.Consensus)
	}
	// Covariance matrix is symmetric with the marginal variance on the
	// diagonal.
	for j := 0; j < 10; j++ {
		p := pa.MutationProbability[j]
		if math.Abs(pa.Covariance[j][j]-p*(1-p)) > 1e-10 {
			t.Errorf("Cov[%d][%d] = %g, want %g", j, j, pa.Covariance[j][j], p*(1-p))
		}
		for k := 0; k < 10; k++ {
			if pa.Covariance[j][k] != pa.Covariance[k][j] {
				t.Error("covariance not symmetric")
			}
		}
	}
}

func TestCoarseDistribution(t *testing.T) {
	sol := solvedSinglePeak(t, 8, 0.01)
	for level := 0; level <= 8; level++ {
		coarse, err := sol.CoarseDistribution(level)
		if err != nil {
			t.Fatal(err)
		}
		if len(coarse) != 1<<(8-level) {
			t.Fatalf("level %d has %d blocks", level, len(coarse))
		}
		var sum float64
		for _, v := range coarse {
			sum += v
		}
		if math.Abs(sum-1) > 1e-10 {
			t.Errorf("level %d mass = %g", level, sum)
		}
	}
	// The block containing the master dominates at every level below ν.
	coarse, _ := sol.CoarseDistribution(4)
	for b := 1; b < len(coarse); b++ {
		if coarse[b] >= coarse[0] {
			t.Errorf("block %d (%g) outweighs the master block (%g)", b, coarse[b], coarse[0])
		}
	}
	if _, err := sol.CoarseDistribution(99); err == nil {
		t.Error("invalid level must error")
	}
}

func TestAnalysisRequiresMaterializedVector(t *testing.T) {
	// Build a Solution without concentrations (long-chain reduced shape).
	sol := &Solution{Gamma: []float64{1}}
	if _, err := sol.TopSequences(1); err == nil {
		t.Error("TopSequences without concentrations must error")
	}
	if _, err := sol.AnalyzePositions(); err == nil {
		t.Error("AnalyzePositions without concentrations must error")
	}
	if _, err := sol.CoarseDistribution(0); err == nil {
		t.Error("CoarseDistribution without concentrations must error")
	}
}

func TestLinkageAboveAndBelowThreshold(t *testing.T) {
	// Below the threshold the single-peak quasispecies is NOT a product
	// distribution: knowing one position is mutated makes others less
	// likely (the cloud is centred on the master), so covariances are
	// non-zero. At p = ½ the distribution is uniform and covariances
	// vanish.
	below := solvedSinglePeak(t, 8, 0.02)
	paB, err := below.AnalyzePositions()
	if err != nil {
		t.Fatal(err)
	}
	maxAbs := 0.0
	for j := 0; j < 8; j++ {
		for k := j + 1; k < 8; k++ {
			if c := math.Abs(paB.Covariance[j][k]); c > maxAbs {
				maxAbs = c
			}
		}
	}
	if maxAbs == 0 {
		t.Error("expected non-zero linkage below the threshold")
	}

	uniform := solvedSinglePeak(t, 8, 0.5)
	paU, err := uniform.AnalyzePositions()
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 8; j++ {
		for k := j + 1; k < 8; k++ {
			if math.Abs(paU.Covariance[j][k]) > 1e-9 {
				t.Errorf("Cov[%d][%d] = %g at p = 1/2, want 0", j, k, paU.Covariance[j][k])
			}
		}
	}
}
