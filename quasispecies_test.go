package quasispecies

import (
	"math"
	"testing"

	"repro/internal/vec"
)

func TestQuickstartPath(t *testing.T) {
	mut, err := UniformMutation(10, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	land, err := SinglePeak(10, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	model, err := New(mut, land)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Method != MethodReduced {
		t.Errorf("auto method = %v, want reduced for a class landscape", sol.Method)
	}
	if sol.Lambda < 1 || sol.Lambda > 2 {
		t.Errorf("λ = %g outside (1, 2)", sol.Lambda)
	}
	if sol.MasterConcentration() < 0.3 {
		t.Errorf("master concentration %g; expected ordered regime", sol.MasterConcentration())
	}
	if math.Abs(vec.Sum(sol.Gamma)-1) > 1e-10 {
		t.Error("Γ distribution must sum to 1")
	}
	if math.Abs(vec.Sum(sol.Concentrations)-1) > 1e-10 {
		t.Error("concentrations must sum to 1")
	}
}

func TestAllMethodsAgree(t *testing.T) {
	const nu = 9
	mut, _ := UniformMutation(nu, 0.01)
	land, _ := SinglePeak(nu, 2, 1)
	methods := []Method{MethodFmmp, MethodLanczos, MethodXmvp, MethodReduced}
	var ref *Solution
	for _, m := range methods {
		opts := []Option{WithMethod(m), WithTolerance(1e-12)}
		if m == MethodXmvp {
			// Full radius makes the baseline exact for the comparison.
			opts = append(opts, WithXmvpRadius(nu))
		}
		model, err := New(mut, land, opts...)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := model.Solve()
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if ref == nil {
			ref = sol
			continue
		}
		if math.Abs(sol.Lambda-ref.Lambda) > 1e-8 {
			t.Errorf("%v: λ = %.14g vs ref %.14g", m, sol.Lambda, ref.Lambda)
		}
		if d := vec.DistInf(sol.Concentrations, ref.Concentrations); d > 1e-7 {
			t.Errorf("%v: concentrations deviate by %g", m, d)
		}
	}
}

func TestXmvpTruncationLosesAccuracy(t *testing.T) {
	// MethodXmvp with the paper's dmax = 5 must be close to, but
	// measurably different from, the exact solution (≈1e-10 per [10]).
	const nu = 12
	mut, _ := UniformMutation(nu, 0.01)
	land, _ := RandomLandscape(nu, 5, 1, 7)
	exact, err := mustSolve(t, mut, land, WithMethod(MethodFmmp), WithTolerance(1e-13))
	if err != nil {
		t.Fatal(err)
	}
	approx, err := mustSolve(t, mut, land, WithMethod(MethodXmvp), WithTolerance(1e-13))
	if err != nil {
		t.Fatal(err)
	}
	d := vec.DistInf(exact.Concentrations, approx.Concentrations)
	if d == 0 {
		t.Error("truncated Xmvp result is suspiciously identical to the exact one")
	}
	if d > 1e-7 {
		t.Errorf("Xmvp(5) deviates by %g; expected ≲1e-8 at p=0.01", d)
	}
}

func mustSolve(t *testing.T, m Mutation, l Landscape, opts ...Option) (*Solution, error) {
	t.Helper()
	model, err := New(m, l, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return model.Solve()
}

func TestParallelWorkersMatchSerial(t *testing.T) {
	const nu = 11
	mut, _ := UniformMutation(nu, 0.01)
	land, _ := RandomLandscape(nu, 5, 1, 3)
	serial, err := mustSolve(t, mut, land, WithMethod(MethodFmmp))
	if err != nil {
		t.Fatal(err)
	}
	par, err := mustSolve(t, mut, land, WithMethod(MethodFmmp), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(serial.Lambda-par.Lambda) > 1e-10 {
		t.Errorf("λ: serial %.15g vs parallel %.15g", serial.Lambda, par.Lambda)
	}
	if d := vec.DistInf(serial.Concentrations, par.Concentrations); d > 1e-9 {
		t.Errorf("concentrations deviate by %g", d)
	}
}

func TestGeneralMutationSolves(t *testing.T) {
	const nu = 8
	rates := make([]float64, nu)
	for i := range rates {
		rates[i] = 0.005 + 0.002*float64(i)
	}
	mut, err := PerSiteMutation(rates)
	if err != nil {
		t.Fatal(err)
	}
	land, _ := RandomLandscape(nu, 5, 1, 4)
	sol, err := mustSolve(t, mut, land)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Method != MethodFmmp {
		t.Errorf("auto method for per-site process = %v, want Fmmp", sol.Method)
	}
	// Cross-check through the residual API.
	model, _ := New(mut, land)
	r, err := model.Residual(sol.Lambda, sol.Concentrations)
	if err != nil {
		t.Fatal(err)
	}
	if r > 1e-9 {
		t.Errorf("residual %g too large", r)
	}
}

func TestAsymmetricGeneralMutation(t *testing.T) {
	factors := make([]SiteFactor, 6)
	for i := range factors {
		factors[i] = SiteFactor{Stay0: 0.99, Stay1: 0.95} // biased toward 0
	}
	mut, err := GeneralMutation(factors)
	if err != nil {
		t.Fatal(err)
	}
	land, _ := FlatLandscape(6, 1)
	sol, err := mustSolve(t, mut, land, WithTolerance(1e-12))
	if err != nil {
		t.Fatal(err)
	}
	// With flat fitness and bias toward 0, the stationary distribution
	// must put more mass on the master sequence than uniform.
	if sol.Concentrations[0] <= 1.0/64 {
		t.Errorf("x₀ = %g; expected above uniform under 0-bias", sol.Concentrations[0])
	}
}

func TestThresholdCurveFacade(t *testing.T) {
	land, _ := SinglePeak(20, 2, 1)
	pts, err := ThresholdCurve(land, []float64{0.01, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || len(pts[0].Gamma) != 21 {
		t.Fatal("unexpected shape")
	}
	if pts[0].Gamma[0] < pts[1].Gamma[0] {
		t.Error("master class must shrink with growing p")
	}
}

func TestEvolveConvergesToSolution(t *testing.T) {
	const nu = 7
	mut, _ := UniformMutation(nu, 0.02)
	land, _ := RandomLandscape(nu, 5, 1, 5)
	model, err := New(mut, land, WithMethod(MethodFmmp))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := model.Evolve(nil, 60, EvolveOptions{Snapshots: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.States) != 4 || len(tr.Times) != 4 {
		t.Fatal("snapshot bookkeeping wrong")
	}
	final := tr.Final()
	if d := vec.DistInf(final, sol.Concentrations); d > 1e-6 {
		t.Errorf("dynamics end state deviates from quasispecies by %g", d)
	}
	phi, err := model.MeanFitness(final)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phi-sol.Lambda) > 1e-6 {
		t.Errorf("Φ(final) = %g, λ = %g", phi, sol.Lambda)
	}
}

func TestSolveKroneckerLongChain(t *testing.T) {
	// ν = 40 via four 10-bit blocks — already beyond dense verification,
	// still instant.
	fit := make([]float64, 1<<10)
	for i := range fit {
		fit[i] = 1
	}
	fit[0] = 2
	var blocks []KroneckerBlock
	for b := 0; b < 4; b++ {
		blocks = append(blocks, KroneckerBlock{ChainLen: 10, ErrorRate: 0.005, Fitness: fit})
	}
	sol, err := SolveKronecker(blocks, WithTolerance(1e-12))
	if err != nil {
		t.Fatal(err)
	}
	if sol.ChainLen() != 40 {
		t.Fatalf("ν = %d", sol.ChainLen())
	}
	gamma := sol.Gamma()
	if len(gamma) != 41 {
		t.Fatalf("Γ classes = %d", len(gamma))
	}
	if math.Abs(vec.Sum(gamma)-1) > 1e-8 {
		t.Error("Γ must sum to 1")
	}
	x0, err := sol.Concentration(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x0-sol.MasterConcentration()) > 1e-15 {
		t.Error("Concentration(0) must equal MasterConcentration")
	}
	mn, mx := sol.ClassEnvelope()
	if len(mn) != 41 || len(mx) != 41 {
		t.Error("envelope shape wrong")
	}
	if sol.Lambda() <= 1 {
		t.Errorf("λ = %g; four weak peaks must lift it above 1", sol.Lambda())
	}
}

func TestValidationErrors(t *testing.T) {
	mut, _ := UniformMutation(5, 0.01)
	land, _ := SinglePeak(6, 2, 1)
	if _, err := New(mut, land); err == nil {
		t.Error("chain length mismatch must be rejected")
	}
	if _, err := New(Mutation{}, land); err == nil {
		t.Error("zero-value Mutation must be rejected")
	}
	land5, _ := SinglePeak(5, 2, 1)
	if _, err := New(mut, land5, WithTolerance(-1)); err == nil {
		t.Error("negative tolerance must be rejected")
	}
	if _, err := New(mut, land5, WithMaxIterations(0)); err == nil {
		t.Error("zero max iterations must be rejected")
	}
	if _, err := New(mut, land5, WithXmvpRadius(0)); err == nil {
		t.Error("zero Xmvp radius must be rejected")
	}
	if _, err := New(mut, land5, WithMethod(Method(42))); err == nil {
		t.Error("unknown method must be rejected")
	}
	if _, err := UniformMutation(5, 0.7); err == nil {
		t.Error("p > 1/2 must be rejected")
	}
	if _, err := PerSiteMutation([]float64{0.1, 0}); err == nil {
		t.Error("zero per-site rate must be rejected")
	}
	if _, err := GeneralMutation([]SiteFactor{{Stay0: 1.2, Stay1: 0.5}}); err == nil {
		t.Error("probability > 1 must be rejected")
	}
	if _, err := SolveKronecker(nil); err == nil {
		t.Error("empty Kronecker system must be rejected")
	}
	if _, err := SolveKronecker([]KroneckerBlock{{ChainLen: 3, ErrorRate: 0.01, Fitness: []float64{1, 1}}}); err == nil {
		t.Error("block size mismatch must be rejected")
	}
	if _, err := ThresholdCurve(Landscape{}, []float64{0.1}); err == nil {
		t.Error("zero-value Landscape must be rejected")
	}
}

func TestReducedRefusesUnstructured(t *testing.T) {
	mut, _ := UniformMutation(8, 0.01)
	land, _ := RandomLandscape(8, 5, 1, 6)
	model, err := New(mut, land, WithMethod(MethodReduced))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.Solve(); err == nil {
		t.Error("reduced method on a random landscape must fail")
	}
}

func TestMethodStrings(t *testing.T) {
	for _, m := range []Method{MethodAuto, MethodFmmp, MethodLanczos, MethodXmvp, MethodReduced} {
		if m.String() == "" {
			t.Error("empty method name")
		}
	}
}

func TestLandscapeAccessors(t *testing.T) {
	land, _ := SinglePeak(6, 2, 1)
	if land.ChainLen() != 6 || land.Fitness(0) != 2 || land.Fitness(5) != 1 {
		t.Error("landscape accessors wrong")
	}
	if !land.IsClassBased() {
		t.Error("single peak must be class based")
	}
	rl, _ := RandomLandscape(6, 5, 1, 1)
	if rl.IsClassBased() {
		t.Error("random landscape must not be class based")
	}
}

func TestShiftOffStillConverges(t *testing.T) {
	mut, _ := UniformMutation(8, 0.01)
	land, _ := RandomLandscape(8, 5, 1, 8)
	on, err := mustSolve(t, mut, land, WithMethod(MethodFmmp), WithShift(true))
	if err != nil {
		t.Fatal(err)
	}
	off, err := mustSolve(t, mut, land, WithMethod(MethodFmmp), WithShift(false))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(on.Lambda-off.Lambda) > 1e-9 {
		t.Error("shift changed the answer")
	}
	if on.Iterations >= off.Iterations {
		t.Errorf("shift did not reduce iterations: %d vs %d", on.Iterations, off.Iterations)
	}
}
