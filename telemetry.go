package quasispecies

import (
	"io"
	"time"

	"repro/internal/obs"
)

// Continuous resource telemetry, behind the -telemetry flag of every CLI.
// StartTelemetry launches a background sampler that polls — once per
// period — process memory (RSS, peak RSS, transparent-huge-page adoption
// from procfs), NUMA page placement, Go runtime state (heap, goroutines,
// GC pauses), the solver's always-on device counters (arena occupancy and
// high-water per NUMA node, pool queue depth and steal totals) and batch
// scheduler progress (inflight, done, points/sec), retaining each signal
// in a fixed-capacity ring. The rings feed /debug/telemetry on the debug
// mux (JSON, or ?format=text for a sparkline table), the qs-top live
// dashboard, and flight-recorder bundles (telemetry.jsonl).
//
// The sampler follows the solver's nil-by-default discipline: nothing is
// polled until StartTelemetry runs, and even then every read is procfs or
// an atomic the solver already maintains — solve paths stay allocation-
// free and bit-identical with telemetry on or off. On non-Linux hosts or
// under restricted procfs the memory/NUMA series degrade to unavailable
// with a single notice line; runtime and solver series work everywhere.

// TelemetryOptions configures StartTelemetry. The zero value samples every
// second and retains 600 points per series (10 minutes at 1 Hz).
type TelemetryOptions struct {
	// Period is the sampling interval (minimum 10ms; 0 selects 1s).
	Period time.Duration
	// Capacity is the per-series ring size (0 selects 600).
	Capacity int
}

// Telemetry is the running resource sampler. One per process: a second
// StartTelemetry returns the same instance.
type Telemetry struct{ s *obs.Sampler }

// StartTelemetry starts (or returns the already-running) process-wide
// resource sampler. It enables the solver metric hooks first, so the qs_*
// resource gauges the sampler refreshes appear on /metrics too.
func StartTelemetry(opts TelemetryOptions) *Telemetry {
	s := obs.StartResourceSampler(obs.SamplerConfig{
		Period:   opts.Period,
		Capacity: opts.Capacity,
	})
	return &Telemetry{s: s}
}

// Notice returns the single degradation line to print when part of the
// telemetry is unavailable on this host, or "" when everything works.
// Call it after the first sampling tick (any time ≥ the period after
// StartTelemetry, or just before printing results).
func (t *Telemetry) Notice() string { return t.s.Notice() }

// WriteJSONL exports every retained series point as JSON lines — the
// flight-bundle and CI artifact format.
func (t *Telemetry) WriteJSONL(w io.Writer) error { return t.s.WriteJSONL(w) }

// Stop halts the sampling goroutine. The retained series stay readable
// (and /debug/telemetry keeps serving them, just stale).
func (t *Telemetry) Stop() { t.s.Stop() }
