package quasispecies

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ode"
)

// Trajectory integrates the full nonlinear replication–mutation ODE system
// (Eq. 1 of the paper) rather than jumping to the stationary distribution.

// EvolveOptions configures time integration of the model.
type EvolveOptions struct {
	// Tol is the adaptive local error tolerance (default 1e-9).
	Tol float64
	// Snapshots, when > 0, records that many evenly spaced states.
	Snapshots int
}

// Trajectory is the result of Evolve: optional snapshots plus the final
// state.
type Trajectory struct {
	// Times are the snapshot times (including the final time).
	Times []float64
	// States holds the concentration distribution at each snapshot time.
	States [][]float64
	// Steps is the total number of accepted integrator steps.
	Steps int
}

// Final returns the last recorded state.
func (tr *Trajectory) Final() []float64 { return tr.States[len(tr.States)-1] }

// Evolve integrates the replicator–mutator dynamics from the initial
// distribution x0 (Σ = 1; nil selects the canonical x₀ = master-only
// start) over [0, t] and returns the trajectory.
func (mo *Model) Evolve(x0 []float64, t float64, opts EvolveOptions) (*Trajectory, error) {
	if t <= 0 {
		return nil, fmt.Errorf("%w: horizon t = %g must be positive", ErrInvalidModel, t)
	}
	op, err := core.NewFmmpOperator(mo.mut.q, mo.land.l, core.Right, mo.dev)
	if err != nil {
		return nil, err
	}
	sys, err := ode.NewSystem(op, mo.land.l)
	if err != nil {
		return nil, err
	}
	x := make([]float64, mo.Dim())
	if x0 == nil {
		copy(x, ode.MasterStart(mo.Dim()))
	} else {
		if len(x0) != mo.Dim() {
			return nil, fmt.Errorf("%w: initial state length %d, want %d", ErrInvalidModel, len(x0), mo.Dim())
		}
		copy(x, x0)
	}

	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-9
	}
	snaps := opts.Snapshots
	if snaps < 1 {
		snaps = 1
	}
	tr := &Trajectory{}
	tPrev := 0.0
	for s := 1; s <= snaps; s++ {
		tNext := t * float64(s) / float64(snaps)
		steps, err := sys.IntegrateAdaptive(x, tPrev, tNext, ode.AdaptiveOptions{
			Tol: tol, Renormalize: true,
		})
		if err != nil {
			return nil, err
		}
		tr.Steps += steps
		state := make([]float64, len(x))
		copy(state, x)
		tr.Times = append(tr.Times, tNext)
		tr.States = append(tr.States, state)
		tPrev = tNext
	}
	return tr, nil
}

// MeanFitness returns Φ(x) = Σ fᵢ·xᵢ, the mean population fitness of a
// concentration distribution under the model's landscape. At the
// quasispecies fixed point Φ equals the dominant eigenvalue λ.
func (mo *Model) MeanFitness(x []float64) (float64, error) {
	if len(x) != mo.Dim() {
		return 0, fmt.Errorf("%w: state length %d, want %d", ErrInvalidModel, len(x), mo.Dim())
	}
	var phi float64
	for i, v := range x {
		phi += mo.land.l.At(uint64(i)) * v
	}
	return phi, nil
}
