// Command qs-rna sweeps the error rate for a four-letter RNA quasispecies
// model (the Section 5.2 alphabet extension) and emits the nucleotide
// error-class curves — the four-letter analogue of Figure 1. For
// Jukes–Cantor substitution with a class fitness landscape the exact
// (L+1)×(L+1) reduction is used, so chains of hundreds of nucleotides are
// instant.
//
//	qs-rna -len 50 -peak 2 > rna_threshold.tsv
//	qs-rna -len 300 -peak 3 -pmax 0.02
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/rna"
)

func main() {
	var (
		l     = flag.Int("len", 50, "chain length L in nucleotides (N = 4^L)")
		peak  = flag.Float64("peak", 2, "master-sequence fitness (base fitness is 1)")
		pMin  = flag.Float64("pmin", 0.0005, "smallest per-nucleotide error rate")
		pMax  = flag.Float64("pmax", 0.05, "largest per-nucleotide error rate")
		steps = flag.Int("steps", 100, "number of p samples")
		kMax  = flag.Int("classes", 10, "number of error classes to print (≤ L)")
	)
	flag.Parse()

	if *l < 1 || *steps < 2 || *pMin <= 0 || *pMax <= *pMin || *pMax > 0.75 {
		fmt.Fprintln(os.Stderr, "qs-rna: invalid parameters")
		os.Exit(1)
	}
	if *kMax > *l {
		*kMax = *l
	}
	phi := make([]float64, *l+1)
	phi[0] = *peak
	for k := 1; k <= *l; k++ {
		phi[k] = 1
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "# four-letter error threshold: L = %d nt, single peak %g, Jukes–Cantor substitution\n", *l, *peak)
	fmt.Fprint(w, "p\tlambda")
	for k := 0; k <= *kMax; k++ {
		fmt.Fprintf(w, "\tGamma%d", k)
	}
	fmt.Fprintln(w)
	for i := 0; i < *steps; i++ {
		p := *pMin + (*pMax-*pMin)*float64(i)/float64(*steps-1)
		sol, err := rna.SolveReduced(*l, p, phi)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qs-rna: p = %g: %v\n", p, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "%.6g\t%.8g", p, sol.Lambda)
		for k := 0; k <= *kMax; k++ {
			fmt.Fprintf(w, "\t%.8g", sol.Gamma[k])
		}
		fmt.Fprintln(w)
	}
}
