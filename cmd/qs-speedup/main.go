// Command qs-speedup regenerates Figure 4 of the paper: speedup factors of
// every algorithm×hardware combination over the reference CPU-Pi(Xmvp(ν))
// — serial Θ(N²) power iteration — for increasing chain lengths. As in the
// paper, the reference is measured up to -maxfull and extrapolated beyond
// (the paper extrapolated for ν ≥ 22).
//
// The expected shape (the paper's headline): curves for the same algorithm
// on different hardware run parallel (constant parallel-speedup offset);
// curves for different algorithms have different slopes, with
// parallel-Pi(Fmmp) the fastest combination by many orders of magnitude at
// large ν.
//
//	qs-speedup -numin 10 -numax 22 > fig4.tsv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/device"
	"repro/internal/harness"
)

func main() {
	var (
		nuMin     = flag.Int("numin", 10, "smallest chain length")
		nuMax     = flag.Int("numax", 20, "largest chain length")
		p         = flag.Float64("p", 0.01, "error rate")
		tolExact  = flag.Float64("tol", 1e-13, "residual tolerance for exact methods")
		tolApprox = flag.Float64("tol-approx", 1e-10, "residual tolerance for Xmvp(5)")
		maxFull   = flag.Int("maxfull", 13, "largest ν measured for Pi(Xmvp(ν))")
		maxSparse = flag.Int("maxsparse", 18, "largest ν measured for Pi(Xmvp(5))")
		workers   = flag.Int("workers", 0, "parallel device workers (0 = all cores)")
		seed      = flag.Uint64("seed", 1, "random landscape seed")
		modelBW   = flag.Float64("model-bandwidth", 144, "also emit a roofline-modeled Pi(Fmmp) curve for a device with this memory bandwidth in GB/s (0 disables; 144 = the paper's Tesla C2050)")
		sweep     = flag.Bool("sweep", false, "append a batched-sweep section: serial/parallel × cold/warm threshold sweep speedups")
		sweepNu   = flag.Int("sweep-nu", 14, "chain length for the -sweep section")
		sweepPts  = flag.Int("sweep-points", 16, "sweep points for the -sweep section")
	)
	flag.Parse()
	if *nuMin < 1 || *nuMax < *nuMin || *nuMax > 28 {
		exitOn(fmt.Errorf("invalid ν range [%d, %d]", *nuMin, *nuMax))
	}
	var nus []int
	for n := *nuMin; n <= *nuMax; n++ {
		nus = append(nus, n)
	}

	base := harness.SolverConfig{
		Nus: nus, P: *p, TolExact: *tolExact, TolApprox: *tolApprox,
		MaxFull: *maxFull, MaxSparse: *maxSparse, Seed: *seed,
	}

	// Serial ("CPU") runs.
	cpuCfg := base
	cpuCfg.Dev = nil
	cpuSeries, err := harness.SolverRuntimes(cpuCfg)
	exitOn(err)

	// Parallel ("GPU" analogue) runs.
	gpuCfg := base
	gpuCfg.Dev = device.New(*workers)
	gpuSeries, err := harness.SolverRuntimes(gpuCfg)
	exitOn(err)

	rename := func(s []*harness.Series, prefix string) {
		for _, x := range s {
			x.Name = prefix + "-" + x.Name
		}
	}
	rename(cpuSeries, "CPU")
	rename(gpuSeries, "PAR")

	// Reference: CPU-Pi(Xmvp(ν)).
	reference := cpuSeries[0]
	comparisons := []*harness.Series{
		gpuSeries[2], // PAR-Pi(Fmmp)
		cpuSeries[2], // CPU-Pi(Fmmp)
		gpuSeries[1], // PAR-Pi(Xmvp(5))
		cpuSeries[1], // CPU-Pi(Xmvp(5))
		gpuSeries[0], // PAR-Pi(Xmvp(ν))
	}

	// Roofline-modeled device curve (Section 4: Fmmp performance tracks
	// memory bandwidth), giving the constant hardware offset of Figure 4
	// even on hosts whose core count cannot provide one.
	var achieved float64
	if *modelBW > 0 {
		var err error
		achieved, err = harness.AchievedBandwidth(cpuSeries[2])
		exitOn(err)
		model, err := harness.ModeledFmmpSeries(
			fmt.Sprintf("MODEL%.0fGBs-Pi(Fmmp)", *modelBW), *modelBW*1e9, cpuSeries[2])
		exitOn(err)
		comparisons = append([]*harness.Series{model}, comparisons...)
	}
	table := harness.Speedups(reference, comparisons)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "# Figure 4: speedup over %s (reference extrapolated past ν=%d, as in the paper)\n",
		reference.Name, *maxFull)
	fmt.Fprintf(w, "# parallel device: %s\n", gpuCfg.Dev)
	if *modelBW > 0 {
		fmt.Fprintf(w, "# host achieved Fmmp bandwidth %.2f GB/s; modeled device %.0f GB/s (offset %.1fx)\n",
			achieved/1e9, *modelBW, *modelBW*1e9/achieved)
	}
	exitOn(table.WriteTSV(w))
	fmt.Fprintln(w, "#")
	fmt.Fprintln(w, "# underlying wall times [s]:")
	exitOn(harness.WriteSeriesTSV(w, append(cpuSeries, gpuSeries...)))

	if *sweep {
		// Solve-level speedups of the batched sweep engine, complementing
		// the kernel-level speedups above.
		sw := *workers
		if sw == 0 {
			sw = 4
		}
		res, err := harness.RunSweepBench(harness.SweepBenchConfig{
			Nu: *sweepNu, Points: *sweepPts, Workers: sw,
		})
		exitOn(err)
		fmt.Fprintln(w, "#")
		exitOn(res.WriteTSV(w))
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "qs-speedup:", err)
		os.Exit(1)
	}
}
