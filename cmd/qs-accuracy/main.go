// Command qs-accuracy quantifies the accuracy/cost trade-off of the
// sparsified Xmvp(dmax) baseline against the exact Fmmp solution — the
// rationale behind the paper's tolerance choices (τ = 1e-10 for Xmvp(5),
// whose truncation error is ≈1e-10 [10], vs τ = 1e-15 for the exact
// methods) and behind Section 4's remark that "the accuracy achieved with
// smaller values for dmax is usually too low".
//
//	qs-accuracy -nu 16 -p 0.01 -maxd 8
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	var (
		nu   = flag.Int("nu", 14, "chain length ν")
		p    = flag.Float64("p", 0.01, "error rate")
		maxd = flag.Int("maxd", 8, "largest truncation radius dmax to test")
		seed = flag.Uint64("seed", 1, "random landscape seed")
	)
	flag.Parse()

	pts, err := harness.AccuracyStudy(*nu, *p, *seed, *maxd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qs-accuracy:", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "# eigenvector/eigenvalue error of Pi(Xmvp(dmax)) vs exact Pi(Fmmp), ν=%d p=%g\n", *nu, *p)
	fmt.Fprintln(w, "dmax\tmasks\tvector_err_inf\tlambda_err")
	for _, pt := range pts {
		fmt.Fprintf(w, "%d\t%d\t%.4g\t%.4g\n", pt.DMax, pt.MatvecMasks, pt.VectorErr, pt.LambdaErr)
	}
}
