// Command qs-matvec regenerates Figure 2 of the paper: single-core
// runtimes of one implicit matrix–vector product W·x for the three
// methods — Xmvp(ν) (≡ Smvp, Θ(N²), extrapolated past -maxfull as in the
// paper), Xmvp(1) (the coarsest sparsification, Θ(N·(ν+1))) and Fmmp
// (exact, Θ(N·log₂N)).
//
// The expected shape: Fmmp is fastest from small ν on — faster even than
// the lowest-accuracy approximation — with a visibly flatter slope than
// the Θ(N²) curve.
//
//	qs-matvec -numin 10 -numax 25 > fig2.tsv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/mutation"
)

func main() {
	var (
		nuMin   = flag.Int("numin", 10, "smallest chain length")
		nuMax   = flag.Int("numax", 22, "largest chain length")
		p       = flag.Float64("p", 0.01, "error rate")
		reps    = flag.Int("reps", 3, "repetitions per measurement (best-of)")
		maxFull = flag.Int("maxfull", 14, "largest ν measured for the Θ(N²) method (larger are extrapolated)")
		seed    = flag.Uint64("seed", 1, "random landscape seed")
		tile    = flag.Int("tile", 0, "log2 of the kernel tile size in float64 elements (0 = default)")
	)
	flag.Parse()
	if *tile > 0 {
		mutation.SetTileBits(*tile)
	}
	if *nuMin < 1 || *nuMax < *nuMin || *nuMax > 30 {
		fmt.Fprintf(os.Stderr, "qs-matvec: invalid ν range [%d, %d]\n", *nuMin, *nuMax)
		os.Exit(1)
	}

	var nus []int
	for nu := *nuMin; nu <= *nuMax; nu++ {
		nus = append(nus, nu)
	}
	series, err := harness.MatvecRuntimes(harness.MatvecConfig{
		Nus: nus, P: *p, Reps: *reps, MaxFull: *maxFull, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "qs-matvec:", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintln(w, "# Figure 2: runtimes [s] of one implicit matvec W·x on a single core")
	fmt.Fprintln(w, "# '*' marks extrapolated values (paper does the same for the O(N^2) reference)")
	if err := harness.WriteSeriesTSV(w, series); err != nil {
		fmt.Fprintln(os.Stderr, "qs-matvec:", err)
		os.Exit(1)
	}
}
