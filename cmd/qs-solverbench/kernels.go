package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/device"
	"repro/internal/mutation"
	"repro/internal/vec"
)

// Kernel ablation mode (-kernels): measures the two optimizations of the
// kernel runtime in isolation, on the pure mutation product Q·v where they
// act —
//
//   - serial: the cache-blocked stage-fused butterflies (Apply) against the
//     literal one-pass-per-stage loop of Algorithm 1 (ApplyNaive);
//   - parallel: the persistent worker pool with fused stage-group launches
//     (ApplyDevice) against the legacy goroutine-per-chunk spawn dispatch
//     with one launch per stage (ApplyDeviceNaive), the software analogue
//     of per-stage kernel-launch overhead.
//
// Results go to stdout as TSV; -json additionally writes a machine-readable
// baseline (the committed results/BENCH_kernels.json is produced this way).

// kernelPoint is one row of the ablation table.
type kernelPoint struct {
	Nu              int     `json:"nu"`
	N               int     `json:"n"`
	SerialNaiveS    float64 `json:"serial_naive_s"`
	SerialBlockedS  float64 `json:"serial_blocked_s"`
	SerialSpeedup   float64 `json:"serial_speedup"`
	ParallelSpawnS  float64 `json:"parallel_spawn_s"`
	ParallelPoolS   float64 `json:"parallel_pool_s"`
	ParallelSpeedup float64 `json:"parallel_speedup"`
}

// kernelReport is the JSON baseline document.
type kernelReport struct {
	P          float64       `json:"p"`
	TileBits   int           `json:"tile_bits"`
	Workers    int           `json:"workers"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Reps       int           `json:"reps"`
	Points     []kernelPoint `json:"points"`
}

// bestOf returns the fastest of reps timed runs of f (per-run wall time).
func bestOf(reps int, f func()) float64 {
	best := 0.0
	for r := 0; r < reps; r++ {
		start := time.Now()
		f()
		el := time.Since(start).Seconds()
		if r == 0 || el < best {
			best = el
		}
	}
	return best
}

func runKernelBench(w io.Writer, nuMin, nuMax, workers, reps int, p float64, jsonPath string) error {
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	spawnDev := device.New(workers, device.WithSpawnDispatch())
	poolDev := device.New(workers)

	rep := kernelReport{
		P: p, TileBits: mutation.TileBits(), Workers: workers,
		GOMAXPROCS: runtime.GOMAXPROCS(0), Reps: reps,
	}
	fmt.Fprintf(w, "# Kernel ablation: one Q·v product, p = %g, tile = 2^%d elements, %d workers (best of %d)\n",
		p, mutation.TileBits(), workers, reps)
	fmt.Fprintln(w, "# serial: blocked stage-fused butterflies vs literal Algorithm 1 stage loop")
	fmt.Fprintln(w, "# parallel: persistent pool + fused stage-group launches vs goroutine-spawn per stage")
	fmt.Fprintln(w, "nu\tN\tt_naive[s]\tt_blocked[s]\tspeedup\tt_spawn[s]\tt_pool[s]\tspeedup")
	for nu := nuMin; nu <= nuMax; nu++ {
		q, err := mutation.NewUniform(nu, p)
		if err != nil {
			return err
		}
		v := make([]float64, q.Dim())
		vec.Fill(v, 1.0/float64(q.Dim()))
		// Warm the caches and the worker pool once per size.
		q.Apply(v)
		q.ApplyDevice(poolDev, v)

		pt := kernelPoint{Nu: nu, N: q.Dim()}
		pt.SerialNaiveS = bestOf(reps, func() { q.ApplyNaive(v) })
		pt.SerialBlockedS = bestOf(reps, func() { q.Apply(v) })
		pt.ParallelSpawnS = bestOf(reps, func() { q.ApplyDeviceNaive(spawnDev, v) })
		pt.ParallelPoolS = bestOf(reps, func() { q.ApplyDevice(poolDev, v) })
		pt.SerialSpeedup = pt.SerialNaiveS / pt.SerialBlockedS
		pt.ParallelSpeedup = pt.ParallelSpawnS / pt.ParallelPoolS
		rep.Points = append(rep.Points, pt)
		fmt.Fprintf(w, "%d\t%d\t%.3e\t%.3e\t%.2f\t%.3e\t%.3e\t%.2f\n",
			pt.Nu, pt.N, pt.SerialNaiveS, pt.SerialBlockedS, pt.SerialSpeedup,
			pt.ParallelSpawnS, pt.ParallelPoolS, pt.ParallelSpeedup)
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}
