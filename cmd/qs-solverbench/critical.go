package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"repro/internal/harness"
)

// Critical-window benchmark mode (-critical): one full-pipeline sweep
// straddling the error threshold p_c with the adaptive method selector
// (serial and parallel, bit-identity checked), plus the capped power
// baseline that the collapsing spectral gap is expected to defeat. Results
// go to stdout as TSV; -json additionally writes the machine-readable
// baseline (results/BENCH_critical.json is produced this way).

// criticalReport is the JSON baseline document.
type criticalReport struct {
	GOMAXPROCS int                          `json:"gomaxprocs"`
	Result     *harness.CriticalBenchResult `json:"result"`
}

func runCriticalBench(w io.Writer, nu, points, workers int, sigma, fracMin, fracMax, tol float64, jsonPath string) error {
	res, err := harness.RunCriticalBench(harness.CriticalBenchConfig{
		Nu: nu, Points: points, Workers: workers, Sigma: sigma,
		FracMin: fracMin, FracMax: fracMax, Tol: tol,
	})
	if err != nil {
		return err
	}
	if !res.BitIdentical {
		return fmt.Errorf("parallel adaptive sweep deviated from serial — determinism contract broken")
	}
	if err := res.WriteTSV(w); err != nil {
		return err
	}
	if jsonPath != "" {
		rep := criticalReport{GOMAXPROCS: runtime.GOMAXPROCS(0), Result: res}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}
