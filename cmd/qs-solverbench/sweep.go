package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/harness"
)

// Sweep benchmark mode (-sweep): measures one full-pipeline threshold
// sweep under the four variants of the batched sweep engine — serial-cold
// (the pre-engine baseline), parallel-cold, serial-warm and parallel-warm
// — and cross-checks that the parallel runs reproduce the serial curves
// bit for bit. Results go to stdout as TSV; -json additionally writes the
// machine-readable baseline (results/BENCH_sweep.json is produced this
// way).

// sweepReport is the JSON baseline document.
type sweepReport struct {
	GOMAXPROCS int                       `json:"gomaxprocs"`
	Result     *harness.SweepBenchResult `json:"result"`
}

func runSweepBench(w io.Writer, nu, points, workers int, sigma, tol float64, method core.SolveMethod, jsonPath string) error {
	res, err := harness.RunSweepBench(harness.SweepBenchConfig{
		Nu: nu, Points: points, Workers: workers, Sigma: sigma, Tol: tol, Method: method,
	})
	if err != nil {
		return err
	}
	if !res.BitIdentical {
		return fmt.Errorf("parallel sweep deviated from serial — determinism contract broken")
	}
	if err := res.WriteTSV(w); err != nil {
		return err
	}
	if jsonPath != "" {
		rep := sweepReport{GOMAXPROCS: runtime.GOMAXPROCS(0), Result: res}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}
