// Command qs-solverbench regenerates Figure 3 of the paper: overall wall
// times for computing the dominant eigenvector of Q·F (random landscape of
// Eq. 13 with c = 5, σ = 1, p = 0.01) with the three power-iteration
// variants — Pi(Xmvp(ν)) at τ = 1e-15-equivalent accuracy, Pi(Xmvp(5)) at
// τ = 1e-10 (its attainable accuracy), and Pi(Fmmp), on a parallel device
// (the paper's GPU analogue) or serially with -workers 1.
//
// With -shift-study it instead reproduces the Section 3 claim that the
// conservative shift µ = (1−2p)^ν·f_min cuts the iteration count by about
// ten percent and more on random landscapes.
//
// With -kernels it runs the kernel-runtime ablation instead: blocked vs
// naive serial butterflies and pool vs spawn parallel dispatch on one Q·v
// product per ν (see kernels.go); -json additionally writes the table as a
// machine-readable baseline.
//
// With -sweep it benchmarks the batched sweep engine instead: one
// full-pipeline threshold sweep at -nu under serial/parallel × cold/warm
// scheduling, with a bit-identity cross-check (see sweep.go); -method
// changes the per-point eigensolver and the variant rows then tally points
// by the gear that solved them.
//
// With -critical it benchmarks the adaptive critical-window engine: a sweep
// straddling p_c with -method auto gear selection, a parallel bit-identity
// cross-check, and the capped power baseline (see critical.go).
//
//	qs-solverbench -numin 10 -numax 22 -workers 0 > fig3.tsv
//	qs-solverbench -shift-study -nu 16
//	qs-solverbench -kernels -numin 14 -numax 22 -json results/BENCH_kernels.json
//	qs-solverbench -sweep -nu 18 -points 16 -workers 4 -json results/BENCH_sweep.json
//	qs-solverbench -critical -nu 18 -points 13 -workers 4 -json results/BENCH_critical.json
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	quasispecies "repro"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/harness"
	"repro/internal/mutation"
	"repro/internal/obs"
)

func main() {
	var (
		nuMin      = flag.Int("numin", 10, "smallest chain length")
		nuMax      = flag.Int("numax", 20, "largest chain length")
		p          = flag.Float64("p", 0.01, "error rate")
		c          = flag.Float64("c", 5, "random landscape c")
		sigma      = flag.Float64("sigma", 1, "random landscape σ")
		tolExact   = flag.Float64("tol", 1e-13, "residual tolerance for the exact methods")
		tolApprox  = flag.Float64("tol-approx", 1e-10, "residual tolerance for Xmvp(5)")
		maxFull    = flag.Int("maxfull", 13, "largest ν measured for Pi(Xmvp(ν)) (larger are extrapolated)")
		maxSparse  = flag.Int("maxsparse", 20, "largest ν measured for Pi(Xmvp(5))")
		workers    = flag.Int("workers", 0, "device workers (0 = all cores, 1 = serial CPU)")
		seed       = flag.Uint64("seed", 1, "random landscape seed")
		shiftStudy = flag.Bool("shift-study", false, "run the shifted-vs-plain iteration comparison instead")
		nu         = flag.Int("nu", 16, "chain length for -shift-study")
		seeds      = flag.Int("seeds", 8, "number of random landscapes for -shift-study")
		kernels    = flag.Bool("kernels", false, "run the kernel ablation (blocked vs naive, pool vs spawn) instead")
		tile       = flag.Int("tile", 0, "log2 of the kernel tile size in float64 elements (0 = default)")
		reps       = flag.Int("reps", 5, "repetitions per measurement for -kernels (best-of)")
		jsonPath   = flag.String("json", "", "with -kernels or -sweep: also write the results as JSON to this file")
		sweep      = flag.Bool("sweep", false, "run the batched sweep benchmark (serial/parallel × cold/warm threshold sweep) instead")
		points     = flag.Int("points", 16, "sweep points for -sweep and -critical")
		sweepSigma = flag.Float64("sweep-sigma", 2, "single-peak superiority f0/f1 for -sweep and -critical")
		method     = flag.String("method", "", "per-point eigensolver for -sweep: power (default) | auto | chebyshev | shiftinvert | lanczos")
		critical   = flag.Bool("critical", false, "run the adaptive critical-window benchmark (sweep straddling p_c with -method auto, plus the capped power baseline) instead")
		fracMin    = flag.Float64("fracmin", 0.90, "lower grid edge for -critical, in units of p_c")
		fracMax    = flag.Float64("fracmax", 1.08, "upper grid edge for -critical, in units of p_c")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. 127.0.0.1:9190)")
		spans      = flag.Bool("spans", false, "profile the run with hierarchical spans and print the per-phase time table to stderr")
		spanOut    = flag.String("span-out", "", "write the span timeline as Chrome trace-event JSON to this file (implies -spans)")
		hwcFlag    = flag.Bool("hwc", false, "attribute hardware counters (perf_event_open: IPC, cache misses) to the span profile (implies -spans; extras via QS_HWC_EVENTS)")
		flight     = flag.Bool("flight", false, "flight-record the run: manifest, black-box rings, numerical-health watchdog, diagnostic bundles on failure")
		flightDir  = flag.String("flight-dir", "flight-bundles", "directory receiving flight diagnostic bundles")
		telemetry  = flag.Bool("telemetry", false, "sample resource telemetry (RSS, NUMA placement, arena occupancy) at 1 Hz; served on /debug/telemetry and by qs-top")
	)
	flag.Parse()
	if *tile > 0 {
		mutation.SetTileBits(*tile)
	}
	if *telemetry {
		tm := quasispecies.StartTelemetry(quasispecies.TelemetryOptions{})
		defer func() {
			if n := tm.Notice(); n != "" {
				fmt.Fprintf(os.Stderr, "qs-solverbench: %s\n", n)
			}
			tm.Stop()
		}()
	}
	if *debugAddr != "" {
		srv, err := obs.StartDebugServer(*debugAddr)
		exitOn(err)
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "qs-solverbench: debug server on http://%s (/metrics, /debug/vars, /debug/pprof)\n", srv.Addr())
	}
	if *flight {
		mode := "fig3"
		switch {
		case *kernels:
			mode = "kernels"
		case *critical:
			mode = "critical"
		case *sweep:
			mode = "sweep"
		case *shiftStudy:
			mode = "shift-study"
		}
		fl := quasispecies.StartFlight(quasispecies.FlightOptions{
			Dir: *flightDir, Tool: "qs-solverbench",
			Nu: *nu, Method: mode, Workers: *workers,
		})
		defer fl.Stop()
		fmt.Fprintf(os.Stderr, "qs-solverbench: flight recording run %s (bundles under %s)\n", fl.RunID(), *flightDir)
	}
	if *spans || *spanOut != "" || *hwcFlag {
		sprof := quasispecies.StartSpanProfileOpts(quasispecies.SpanProfileOptions{HWC: *hwcFlag})
		if *hwcFlag && !sprof.HWCActive() {
			fmt.Fprintf(os.Stderr, "qs-solverbench: hardware counters unavailable, continuing with wall-time spans only (%s)\n", sprof.HWCReason())
		}
		defer func() {
			sprof.Stop()
			fmt.Fprintln(os.Stderr, "qs-solverbench: span profile (per-phase times):")
			if err := sprof.WriteTable(os.Stderr); err != nil {
				fmt.Fprintln(os.Stderr, "qs-solverbench:", err)
			}
			if *spanOut != "" {
				if err := sprof.WriteChromeTraceFile(*spanOut); err != nil {
					fmt.Fprintln(os.Stderr, "qs-solverbench:", err)
				} else {
					fmt.Fprintf(os.Stderr, "qs-solverbench: span timeline written to %s (open in ui.perfetto.dev)\n", *spanOut)
				}
			}
		}()
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	if *kernels {
		if *nuMin < 1 || *nuMax < *nuMin || *nuMax > 28 {
			exitOn(fmt.Errorf("invalid ν range [%d, %d]", *nuMin, *nuMax))
		}
		exitOn(runKernelBench(w, *nuMin, *nuMax, *workers, *reps, *p, *jsonPath))
		return
	}

	if *sweep || *critical {
		// -workers here is the solve-level concurrency of the batch
		// engine, not device workers; -tol 0 selects the floating-point
		// floor default. Sweep-point grid straddles the error threshold.
		sweepWorkers := *workers
		if sweepWorkers == 0 {
			sweepWorkers = 4
		}
		tol := *tolExact
		if tol == 1e-13 { // flag default: let the engine pick the floor
			tol = 0
		}
		if *critical {
			exitOn(runCriticalBench(w, *nu, *points, sweepWorkers, *sweepSigma, *fracMin, *fracMax, tol, *jsonPath))
			return
		}
		solveMethod, err := core.ParseSolveMethod(*method)
		exitOn(err)
		exitOn(runSweepBench(w, *nu, *points, sweepWorkers, *sweepSigma, tol, solveMethod, *jsonPath))
		return
	}

	if *shiftStudy {
		seedList := make([]uint64, *seeds)
		for i := range seedList {
			seedList[i] = *seed + uint64(i)
		}
		pts, err := harness.ShiftStudy(*nu, *p, *tolExact, seedList)
		exitOn(err)
		fmt.Fprintln(w, "# Section 3 shift study: power-iteration counts with and without µ = (1−2p)^ν·f_min")
		fmt.Fprintln(w, "seed\titer_plain\titer_shifted\treduction_pct\tlambda_matches")
		totP, totS := 0, 0
		for _, pt := range pts {
			fmt.Fprintf(w, "%d\t%d\t%d\t%.2f\t%v\n", pt.Seed, pt.IterPlain, pt.IterShifted, pt.ReductionPct, pt.LambdaMatches)
			totP += pt.IterPlain
			totS += pt.IterShifted
		}
		fmt.Fprintf(w, "# overall reduction: %.2f%%\n", 100*(1-float64(totS)/float64(totP)))
		return
	}

	if *nuMin < 1 || *nuMax < *nuMin || *nuMax > 28 {
		exitOn(fmt.Errorf("invalid ν range [%d, %d]", *nuMin, *nuMax))
	}
	var nus []int
	for n := *nuMin; n <= *nuMax; n++ {
		nus = append(nus, n)
	}
	var dev *device.Device
	if *workers != 1 {
		dev = device.New(*workers)
	}
	series, err := harness.SolverRuntimes(harness.SolverConfig{
		Nus: nus, P: *p, C: *c, Sig: *sigma,
		TolExact: *tolExact, TolApprox: *tolApprox,
		MaxFull: *maxFull, MaxSparse: *maxSparse,
		Dev: dev, Seed: *seed,
	})
	exitOn(err)
	hw := "serial (CPU analogue)"
	if dev != nil {
		hw = dev.String() + " (GPU analogue)"
	}
	fmt.Fprintf(w, "# Figure 3: overall power-iteration wall times [s] on %s\n", hw)
	fmt.Fprintln(w, "# random landscape Eq. 13 (c, σ) as flagged; '*' marks extrapolated values")
	exitOn(harness.WriteSeriesTSV(w, series))
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "qs-solverbench:", err)
		os.Exit(1)
	}
}
