// Command qs-top is a live terminal dashboard over a solver process'
// /debug/telemetry endpoint: one row per telemetry series (RSS, huge-page
// adoption, NUMA placement, arena occupancy, pool pressure, sweep
// points/sec) with windowed aggregates and a Unicode sparkline, refreshed
// in place with ANSI escapes.
//
//	qs-threshold -full -nu 14 -steps 48 -telemetry -debug-addr 127.0.0.1:9190 &
//	qs-top                       # live view, refreshed every second
//	qs-top -once                 # one snapshot to stdout (CI smoke)
//
// Against a process without -telemetry the dashboard stays up and shows
// the single "sampler not running" notice the endpoint serves.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:9190", "debug server address (host:port) of the solver process")
		interval = flag.Duration("interval", time.Second, "refresh interval")
		once     = flag.Bool("once", false, "print one snapshot to stdout and exit (no ANSI, CI-friendly)")
		window   = flag.Duration("window", 0, "aggregate window for the stats columns (0 = everything retained)")
		spark    = flag.Int("spark", 32, "sparkline width in cells")
	)
	flag.Parse()

	client := &http.Client{Timeout: 5 * time.Second}
	if *once {
		if err := refresh(os.Stdout, client, *addr, *window, *spark, false); err != nil {
			fmt.Fprintln(os.Stderr, "qs-top:", err)
			os.Exit(1)
		}
		return
	}
	for {
		if err := refresh(os.Stdout, client, *addr, *window, *spark, true); err != nil {
			// A dead or restarting process is a state to display, not a
			// reason to exit: keep polling.
			fmt.Fprintf(os.Stdout, "\x1b[H\x1b[2Jqs-top — %s\n\n%v\n", *addr, err)
		}
		time.Sleep(*interval)
	}
}

// payload mirrors the /debug/telemetry JSON shape (the subset qs-top uses).
type payload struct {
	Active        bool    `json:"active"`
	Notice        string  `json:"notice"`
	StartedUnixMS int64   `json:"started_unix_ms"`
	PeriodSeconds float64 `json:"period_seconds"`
	State         *struct {
		Mem struct {
			Available     bool    `json:"available"`
			Reason        string  `json:"reason"`
			RSSBytes      int64   `json:"rss_bytes"`
			PeakRSSBytes  int64   `json:"rss_peak_bytes"`
			AnonHugeBytes int64   `json:"anon_huge_bytes"`
			HugeRatio     float64 `json:"huge_ratio"`
		} `json:"mem"`
		Solver struct {
			PoolWorkers   int   `json:"pool_workers"`
			BatchInflight int64 `json:"batch_inflight"`
			BatchDone     int64 `json:"batch_done"`
			BatchPlanned  int64 `json:"batch_planned"`
		} `json:"solver"`
	} `json:"state"`
	Series []struct {
		Name   string `json:"name"`
		Kind   string `json:"kind"`
		Unit   string `json:"unit"`
		Window *struct {
			Points     int     `json:"points"`
			Last       float64 `json:"last"`
			Min        float64 `json:"min"`
			Max        float64 `json:"max"`
			RatePerSec float64 `json:"rate_per_sec"`
		} `json:"window"`
		Points []struct {
			T int64   `json:"unix_ns"`
			V float64 `json:"value"`
		} `json:"points"`
	} `json:"series"`
}

type healthz struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Goroutines    int     `json:"goroutines"`
	HeapBytes     int64   `json:"heap_bytes"`
	RunID         string  `json:"run_id"`
}

// refresh fetches one telemetry + healthz snapshot and renders it. With
// ansi it first homes the cursor and clears the screen.
func refresh(w io.Writer, client *http.Client, addr string, window time.Duration, spark int, ansi bool) error {
	q := url.Values{"points": []string{strconv.Itoa(max(spark, 1))}}
	if window > 0 {
		q.Set("window", window.String())
	}
	var p payload
	if err := fetchJSON(client, "http://"+addr+"/debug/telemetry?"+q.Encode(), &p); err != nil {
		return err
	}
	var h healthz
	_ = fetchJSON(client, "http://"+addr+"/healthz", &h) // optional garnish

	var b strings.Builder
	if ansi {
		b.WriteString("\x1b[H\x1b[2J")
	}
	fmt.Fprintf(&b, "qs-top — %s · up %s", addr, (time.Duration(h.UptimeSeconds * float64(time.Second))).Round(time.Second))
	if h.RunID != "" {
		fmt.Fprintf(&b, " · run %s", h.RunID)
	}
	fmt.Fprintf(&b, " · %d goroutines · heap %s\n", h.Goroutines, obs.FormatBytes(h.HeapBytes))

	if !p.Active {
		fmt.Fprintf(&b, "\n%s\n", p.Notice)
		_, err := io.WriteString(w, b.String())
		return err
	}
	if st := p.State; st != nil {
		if st.Mem.Available {
			fmt.Fprintf(&b, "rss %s (peak %s) · thp %s (%.0f%%)",
				obs.FormatBytes(st.Mem.RSSBytes), obs.FormatBytes(st.Mem.PeakRSSBytes),
				obs.FormatBytes(st.Mem.AnonHugeBytes), 100*st.Mem.HugeRatio)
		} else {
			fmt.Fprintf(&b, "mem unavailable: %s", st.Mem.Reason)
		}
		if st.Solver.BatchPlanned > 0 {
			fmt.Fprintf(&b, " · tasks %d/%d (%d in flight)",
				st.Solver.BatchDone, st.Solver.BatchPlanned, st.Solver.BatchInflight)
		}
		b.WriteByte('\n')
	}
	if p.Notice != "" {
		fmt.Fprintf(&b, "notice: %s\n", p.Notice)
	}
	fmt.Fprintf(&b, "\n%-28s %12s %12s %12s %10s  %s\n", "SERIES", "LAST", "MIN", "MAX", "RATE/S", "TREND")
	for _, s := range p.Series {
		if s.Window == nil || s.Window.Points == 0 {
			continue
		}
		vals := make([]float64, len(s.Points))
		for i, pt := range s.Points {
			vals[i] = pt.V
		}
		rate := "-"
		if s.Kind == "cumulative" {
			rate = fmtVal("1/s", s.Window.RatePerSec)
		}
		fmt.Fprintf(&b, "%-28s %12s %12s %12s %10s  %s\n",
			s.Name,
			fmtVal(s.Unit, s.Window.Last),
			fmtVal(s.Unit, s.Window.Min),
			fmtVal(s.Unit, s.Window.Max),
			rate,
			obs.Sparkline(vals, spark))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func fetchJSON(client *http.Client, url string, dst any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(dst)
}

// fmtVal renders a value according to its series unit (mirrors the
// ?format=text renderer).
func fmtVal(unit string, v float64) string {
	switch unit {
	case "bytes":
		return obs.FormatBytes(int64(v))
	case "s":
		return fmt.Sprintf("%.4gs", v)
	default:
		if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
			return strconv.FormatInt(int64(v), 10)
		}
		return fmt.Sprintf("%.4g", v)
	}
}
