// Command qs-gap sweeps the error rate and reports the spectral gap of
// W = Q·F — the quantity that governs the power iteration's convergence
// rate λ₁/λ₀ and, through it, every runtime in Figures 3 and 4. The gap
// closes as p approaches the error threshold, which is Figure 1's phase
// transition seen from the spectrum.
//
// Output: p, λ₀, λ₁, rate, shifted rate (with µ = (1−2p)^ν·f_min), the
// predicted iteration count to reach 1e−10, and a status column. Inside the
// critical window the two leading eigenvalues collapse below the attainable
// numerical resolution; such points are reported as "unresolved" (with the
// reason) instead of a spuriously tiny gap — the same signal that makes the
// adaptive sweep engine (qs-threshold -method auto) switch off the power
// iteration there.
//
//	qs-gap -nu 14 -pmin 0.005 -pmax 0.08 -steps 16
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/landscape"
	"repro/internal/mutation"
)

func main() {
	var (
		nu    = flag.Int("nu", 12, "chain length ν")
		f0    = flag.Float64("f0", 2, "master fitness")
		f1    = flag.Float64("f1", 1, "base fitness")
		pMin  = flag.Float64("pmin", 0.005, "smallest error rate")
		pMax  = flag.Float64("pmax", 0.08, "largest error rate")
		steps = flag.Int("steps", 12, "number of p samples")
	)
	flag.Parse()
	if *steps < 2 || *pMin <= 0 || *pMax <= *pMin || *pMax > 0.5 {
		exitOn(fmt.Errorf("invalid sweep [%g, %g] with %d steps", *pMin, *pMax, *steps))
	}
	l, err := landscape.NewSinglePeak(*nu, *f0, *f1)
	exitOn(err)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "# spectral gap of W = Q·F, single peak f0=%g f1=%g, ν=%d\n", *f0, *f1, *nu)
	fmt.Fprintln(w, "p\tlambda0\tlambda1\trate\tshifted_rate\tpredicted_iters_1e-10\tstatus")
	for i := 0; i < *steps; i++ {
		p := *pMin + (*pMax-*pMin)*float64(i)/float64(*steps-1)
		q, err := mutation.NewUniform(*nu, p)
		exitOn(err)
		op, err := core.NewFmmpOperator(q, l, core.Symmetric, nil)
		exitOn(err)
		mu := core.ConservativeShift(q, l)
		gap, err := core.EstimateGap(op, mu, core.PowerOptions{
			Tol: 1e-11, Start: core.FitnessStart(l),
		})
		status := "ok"
		var unresolved *core.GapUnresolvedError
		if errors.As(err, &unresolved) {
			// λ₀ is still trustworthy; the separation is not. Report the
			// point instead of aborting the sweep — rate and prediction
			// columns are meaningless here.
			status = "unresolved:" + unresolved.Reason
			fmt.Fprintf(w, "%.5g\t%.8g\t%.8g\tnan\tnan\t-1\t%s\n",
				p, gap.Lambda0, gap.Lambda1, status)
			continue
		}
		exitOn(err)
		iters, err := core.PredictIterations(gap.ShiftedRate, 1e-10)
		if err != nil {
			iters = -1
		}
		fmt.Fprintf(w, "%.5g\t%.8g\t%.8g\t%.6f\t%.6f\t%d\t%s\n",
			p, gap.Lambda0, gap.Lambda1, gap.Rate, gap.ShiftedRate, iters, status)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "qs-gap:", err)
		os.Exit(1)
	}
}
