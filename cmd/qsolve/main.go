// Command qsolve computes the quasispecies distribution for a configurable
// model: chain length, error rate, fitness landscape and solver method.
//
// Examples:
//
//	qsolve -nu 20 -p 0.01 -landscape singlepeak -f0 2 -f1 1
//	qsolve -nu 16 -p 0.02 -landscape random -c 5 -sigma 1 -seed 7 -method fmmp -workers 0
//	qsolve -nu 12 -p 0.01 -landscape linear -f0 2 -f1 1 -method lanczos -dump-gamma
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	quasispecies "repro"
	"repro/internal/obs"
)

func main() {
	var (
		nu      = flag.Int("nu", 16, "chain length ν (problem size N = 2^ν)")
		p       = flag.Float64("p", 0.01, "error rate p ∈ (0, 1/2]")
		land    = flag.String("landscape", "singlepeak", "fitness landscape: singlepeak | linear | random | flat")
		f0      = flag.Float64("f0", 2, "master fitness (singlepeak/linear) or flat value")
		f1      = flag.Float64("f1", 1, "base fitness (singlepeak) / distance-ν fitness (linear)")
		c       = flag.Float64("c", 5, "random landscape: master fitness c (Eq. 13)")
		sigma   = flag.Float64("sigma", 1, "random landscape: scale σ ∈ (0, c/2) (Eq. 13)")
		seed    = flag.Uint64("seed", 1, "random landscape seed")
		method  = flag.String("method", "auto", "solver: auto | fmmp | lanczos | xmvp | reduced | arnoldi")
		dmax    = flag.Int("dmax", 5, "Xmvp truncation radius")
		tol     = flag.Float64("tol", 1e-12, "residual tolerance τ")
		workers = flag.Int("workers", 1, "compute workers (0 = all cores, 1 = serial)")
		noShift = flag.Bool("no-shift", false, "disable the convergence shift µ = (1−2p)^ν·f_min")
		gamma   = flag.Bool("dump-gamma", false, "print all class concentrations [Γk]")
		topN    = flag.Int("top", 5, "print the N most concentrated sequences")
		perSite = flag.String("persite", "", "comma-separated per-position error rates (overrides -p; enables the Section 2.2 general process)")
		save    = flag.String("save", "", "write the solved distribution to this checkpoint file")
		load    = flag.String("load", "", "skip solving; analyze the checkpoint file instead")

		debugAddr  = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. 127.0.0.1:9190)")
		traceFile  = flag.String("trace", "", "write the solve's convergence trace to this file (.tsv or .jsonl)")
		traceEvery = flag.Int("trace-every", 1, "keep every Nth residual check in the trace")
		spans      = flag.Bool("spans", false, "profile the solve with hierarchical spans and print the per-phase time table")
		spanOut    = flag.String("span-out", "", "write the span timeline as Chrome trace-event JSON to this file (implies -spans; load in Perfetto)")
		hwcFlag    = flag.Bool("hwc", false, "attribute hardware counters (perf_event_open: IPC, cache misses) to the span profile (implies -spans; extras via QS_HWC_EVENTS)")
		flight     = flag.Bool("flight", false, "flight-record the run: manifest, black-box rings, numerical-health watchdog, diagnostic bundles on failure")
		flightDir  = flag.String("flight-dir", "flight-bundles", "directory receiving flight diagnostic bundles")
		telemetry  = flag.Bool("telemetry", false, "sample resource telemetry (RSS, NUMA placement, arena occupancy) at 1 Hz; served on /debug/telemetry and by qs-top")
	)
	flag.Parse()

	if *debugAddr != "" {
		srv, err := obs.StartDebugServer(*debugAddr)
		exitOn(err)
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "qsolve: debug server on http://%s (/metrics, /debug/vars, /debug/pprof)\n", srv.Addr())
	}
	var tm *quasispecies.Telemetry
	if *telemetry {
		tm = quasispecies.StartTelemetry(quasispecies.TelemetryOptions{})
		defer func() {
			if n := tm.Notice(); n != "" {
				fmt.Fprintf(os.Stderr, "qsolve: %s\n", n)
			}
			tm.Stop()
		}()
	}

	var fl *quasispecies.Flight
	if *flight {
		fl = quasispecies.StartFlight(quasispecies.FlightOptions{
			Dir: *flightDir, Tool: "qsolve",
			Nu: *nu, Method: *method, Workers: *workers, PGrid: []float64{*p},
		})
		defer fl.Stop()
		fmt.Fprintf(os.Stderr, "qsolve: flight recording run %s (bundles under %s)\n", fl.RunID(), *flightDir)
	}

	if *load != "" {
		sol, err := quasispecies.LoadSolutionFile(*load)
		exitOn(err)
		fmt.Printf("loaded checkpoint %s: ν=%d λ=%.15g residual=%.3g\n",
			*load, len(sol.Gamma)-1, sol.Lambda, sol.Residual)
		printSolution(sol, len(sol.Gamma)-1, *gamma, *topN)
		return
	}

	l, err := buildLandscape(*land, *nu, *f0, *f1, *c, *sigma, *seed)
	exitOn(err)
	var mut quasispecies.Mutation
	if *perSite != "" {
		rates, err := parseRates(*perSite)
		exitOn(err)
		if len(rates) != *nu {
			exitOn(fmt.Errorf("-persite lists %d rates, ν = %d", len(rates), *nu))
		}
		mut, err = quasispecies.PerSiteMutation(rates)
		exitOn(err)
	} else {
		mut, err = quasispecies.UniformMutation(*nu, *p)
		exitOn(err)
	}

	m, err := methodFromName(*method)
	exitOn(err)
	modelOpts := []quasispecies.Option{
		quasispecies.WithMethod(m),
		quasispecies.WithTolerance(*tol),
		quasispecies.WithWorkers(*workers),
		quasispecies.WithShift(!*noShift),
		quasispecies.WithXmvpRadius(*dmax),
	}
	var observer quasispecies.SolveObserver
	var trace *obs.Trace
	if *traceFile != "" {
		trace = obs.NewTrace(*traceEvery)
		observer = trace.Recorder(fmt.Sprintf("p=%g", *p))
	}
	if fl != nil {
		if trace != nil {
			trace.SetRunID(fl.RunID())
		}
		observer = quasispecies.TeeSolveObservers(observer, fl.Observer(fmt.Sprintf("p=%g", *p)))
	}
	if observer != nil {
		modelOpts = append(modelOpts, quasispecies.WithObserver(observer))
	}
	model, err := quasispecies.New(mut, l, modelOpts...)
	exitOn(err)

	var sprof *quasispecies.SpanProfile
	if *spans || *spanOut != "" || *hwcFlag {
		sprof = quasispecies.StartSpanProfileOpts(quasispecies.SpanProfileOptions{HWC: *hwcFlag})
		if *hwcFlag && !sprof.HWCActive() {
			fmt.Fprintf(os.Stderr, "qsolve: hardware counters unavailable, continuing with wall-time spans only (%s)\n", sprof.HWCReason())
		}
	}
	start := time.Now()
	sol, err := model.Solve()
	if sprof != nil {
		sprof.Stop()
		// Like the convergence trace, the profile is reported even when the
		// solve failed — where the time went is most interesting then.
		fmt.Fprintln(os.Stderr, "\nspan profile (per-phase times):")
		if werr := sprof.WriteTable(os.Stderr); werr != nil {
			fmt.Fprintln(os.Stderr, "qsolve:", werr)
		}
		if *spanOut != "" {
			if werr := sprof.WriteChromeTraceFile(*spanOut); werr != nil {
				fmt.Fprintln(os.Stderr, "qsolve:", werr)
			} else {
				fmt.Fprintf(os.Stderr, "qsolve: span timeline written to %s (open in ui.perfetto.dev)\n", *spanOut)
			}
		}
	}
	if trace != nil {
		// Write the trace even when the solve failed — a stagnation trace
		// is exactly what the file is for.
		if werr := trace.WriteFile(*traceFile); werr != nil {
			fmt.Fprintln(os.Stderr, "qsolve:", werr)
		} else {
			fmt.Fprintf(os.Stderr, "qsolve: convergence trace written to %s (%d rows)\n",
				*traceFile, len(trace.Rows()))
		}
	}
	if err != nil && fl != nil {
		if dir, ok := fl.DumpOnError(err); ok {
			fmt.Fprintf(os.Stderr, "qsolve: diagnostic bundle dumped to %s\n", dir)
		}
	}
	exitOn(err)
	elapsed := time.Since(start)

	fmt.Printf("model:      ν=%d N=%d p=%g landscape=%s\n", *nu, model.Dim(), *p, *land)
	fmt.Printf("method:     %s (%d iterations, residual %.3g)\n", sol.Method, sol.Iterations, sol.Residual)
	fmt.Printf("wall time:  %v\n", elapsed)
	fmt.Printf("lambda:     %.15g   (mean fitness of the stationary population)\n", sol.Lambda)
	fmt.Printf("master x0:  %.10g\n", sol.MasterConcentration())
	printSolution(sol, *nu, *gamma, *topN)

	if *save != "" {
		exitOn(sol.SaveFile(*save))
		fmt.Printf("\ncheckpoint written to %s\n", *save)
	}
}

func printSolution(sol *quasispecies.Solution, nu int, gamma bool, topN int) {
	if gamma {
		fmt.Println("\nclass concentrations [Γk]:")
		for k, g := range sol.Gamma {
			fmt.Printf("  Γ%-3d %.10g\n", k, g)
		}
	}
	if topN > 0 && sol.Concentrations != nil {
		top, err := sol.TopSequences(topN)
		exitOn(err)
		fmt.Printf("\ntop %d sequences:\n", topN)
		for _, e := range top {
			fmt.Printf("  X%-8d (%0*b)  %.10g\n", e.Sequence, nu, e.Sequence, e.Concentration)
		}
	}
}

func parseRates(list string) ([]float64, error) {
	parts := strings.Split(list, ",")
	rates := make([]float64, 0, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("rate %d: %w", i, err)
		}
		rates = append(rates, v)
	}
	return rates, nil
}

func buildLandscape(kind string, nu int, f0, f1, c, sigma float64, seed uint64) (quasispecies.Landscape, error) {
	switch kind {
	case "singlepeak":
		return quasispecies.SinglePeak(nu, f0, f1)
	case "linear":
		return quasispecies.LinearLandscape(nu, f0, f1)
	case "random":
		return quasispecies.RandomLandscape(nu, c, sigma, seed)
	case "flat":
		return quasispecies.FlatLandscape(nu, f0)
	default:
		return quasispecies.Landscape{}, fmt.Errorf("unknown landscape %q", kind)
	}
}

func methodFromName(name string) (quasispecies.Method, error) {
	switch name {
	case "auto":
		return quasispecies.MethodAuto, nil
	case "fmmp":
		return quasispecies.MethodFmmp, nil
	case "lanczos":
		return quasispecies.MethodLanczos, nil
	case "xmvp":
		return quasispecies.MethodXmvp, nil
	case "reduced":
		return quasispecies.MethodReduced, nil
	case "arnoldi":
		return quasispecies.MethodArnoldi, nil
	default:
		return 0, fmt.Errorf("unknown method %q", name)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsolve:", err)
		os.Exit(1)
	}
}
