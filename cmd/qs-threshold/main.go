// Command qs-threshold regenerates Figure 1 of the paper: the cumulative
// error-class concentrations [Γ0] … [Γν] as functions of the error rate p,
// for the single-peak landscape (left panel: sharp error threshold at
// p_max ≈ 0.035 for ν = 20, f₀/f₁ = 2) and the linear landscape (right
// panel: smooth transition, no threshold).
//
// Output is TSV: one row per p, one column per error class — directly
// plottable.
//
//	qs-threshold -landscape singlepeak -nu 20 > fig1_left.tsv
//	qs-threshold -landscape linear     -nu 20 > fig1_right.tsv
//
// By default each point is solved with the exact (ν+1)×(ν+1) class
// reduction; -full switches to full 2^ν Pi(Fmmp) solves, the mode that
// exercises the instrumented solver core and supports -trace convergence
// dumps and live -debug-addr metrics:
//
//	qs-threshold -full -nu 14 -steps 24 -warm -trace trace.tsv -debug-addr 127.0.0.1:9190
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	quasispecies "repro"
	"repro/internal/obs"
)

func main() {
	var (
		nu      = flag.Int("nu", 20, "chain length ν")
		land    = flag.String("landscape", "singlepeak", "singlepeak | linear")
		f0      = flag.Float64("f0", 2, "master fitness f₀")
		f1      = flag.Float64("f1", 1, "base / distance-ν fitness")
		pMin    = flag.Float64("pmin", 0.0005, "smallest error rate")
		pMax    = flag.Float64("pmax", 0.09, "largest error rate")
		steps   = flag.Int("steps", 180, "number of p samples")
		locate  = flag.Bool("locate", false, "bisect and print the error threshold p_max instead of sweeping")
		workers = flag.Int("workers", 1, "concurrent eigensolves (0/1 serial, -1 all cores); results are bit-identical at any count")
		warm    = flag.Bool("warm", false, "warm-start each solve from the previous error rate's solution")
		full    = flag.Bool("full", false, "solve the full 2^ν eigenproblem per point instead of the exact class reduction")
		method  = flag.String("method", "power", "per-point eigensolver: power | auto | chebyshev | shiftinvert | lanczos (auto adapts per point: power far from the threshold, Krylov gears inside the critical window)")

		debugAddr  = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. 127.0.0.1:9190)")
		traceFile  = flag.String("trace", "", "write per-point convergence traces to this file (.tsv or .jsonl; requires -full)")
		traceEvery = flag.Int("trace-every", 1, "keep every Nth residual check per point in the trace")
		progress   = flag.Bool("progress", false, "print one line per solved point to stderr")
		spans      = flag.Bool("spans", false, "profile the sweep with hierarchical spans and print the per-phase time table (requires -full)")
		spanOut    = flag.String("span-out", "", "write the span timeline as Chrome trace-event JSON to this file (implies -spans)")
		hwcFlag    = flag.Bool("hwc", false, "attribute hardware counters (perf_event_open: IPC, cache misses) to the span profile (implies -spans; requires -full; extras via QS_HWC_EVENTS)")
		flight     = flag.Bool("flight", false, "flight-record the sweep: manifest, black-box rings, numerical-health watchdog, diagnostic bundles on failure (requires -full)")
		flightDir  = flag.String("flight-dir", "flight-bundles", "directory receiving flight diagnostic bundles")
		telemetry  = flag.Bool("telemetry", false, "sample resource telemetry (RSS, NUMA placement, arena occupancy, points/sec) at 1 Hz; served on /debug/telemetry and by qs-top")
	)
	flag.Parse()

	var tm *quasispecies.Telemetry
	if *telemetry {
		tm = quasispecies.StartTelemetry(quasispecies.TelemetryOptions{})
		defer tm.Stop()
	}

	if *debugAddr != "" {
		srv, err := obs.StartDebugServer(*debugAddr)
		exitOn(err)
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "qs-threshold: debug server on http://%s (/metrics, /debug/vars, /debug/pprof)\n", srv.Addr())
	}
	if (*spans || *spanOut != "" || *hwcFlag) && !*full {
		exitOn(fmt.Errorf("-spans profiles the full-space solver; add -full (the class reduction has no instrumented phases)"))
	}
	if *traceFile != "" && !*full {
		exitOn(fmt.Errorf("-trace records full-space convergence traces; add -full (the class reduction is exact and does not iterate per point)"))
	}
	if *flight && !*full {
		exitOn(fmt.Errorf("-flight watches the full-space solver; add -full (the class reduction is exact and has nothing to stall)"))
	}

	var l quasispecies.Landscape
	var err error
	switch *land {
	case "singlepeak":
		l, err = quasispecies.SinglePeak(*nu, *f0, *f1)
	case "linear":
		l, err = quasispecies.LinearLandscape(*nu, *f0, *f1)
	default:
		err = fmt.Errorf("unknown landscape %q", *land)
	}
	exitOn(err)

	if *steps < 2 || *pMax <= *pMin || *pMin <= 0 || *pMax > 0.5 {
		exitOn(fmt.Errorf("invalid sweep range [%g, %g] with %d steps", *pMin, *pMax, *steps))
	}
	ps := make([]float64, *steps)
	for i := range ps {
		ps[i] = *pMin + (*pMax-*pMin)*float64(i)/float64(*steps-1)
	}
	if *locate {
		located, err := quasispecies.LocateErrorThresholdWith(l, *pMin, *pMax, 1e-6,
			quasispecies.SweepOptions{Workers: *workers, Method: *method})
		exitOn(err)
		fmt.Printf("located p_max = %.6f\n", located)
		if *land == "singlepeak" && *f0 > *f1 {
			theory, err := quasispecies.TheoreticalErrorThreshold(*f0 / *f1, *nu)
			exitOn(err)
			fmt.Printf("first-order theory 1 - sigma^(-1/nu) = %.6f\n", theory)
		}
		return
	}

	var fl *quasispecies.Flight
	if *flight {
		fl = quasispecies.StartFlight(quasispecies.FlightOptions{
			Dir: *flightDir, Tool: "qs-threshold",
			Nu: *nu, Method: *method, Workers: *workers, PGrid: ps,
		})
		defer fl.Stop()
		fmt.Fprintf(os.Stderr, "qs-threshold: flight recording run %s (bundles under %s)\n", fl.RunID(), *flightDir)
	}

	obs.RecordSweepStart(len(ps))
	opts := quasispecies.SweepOptions{Workers: *workers, WarmStart: *warm, Method: *method, HWC: *hwcFlag}
	if *progress || *debugAddr != "" || fl != nil {
		pr := *progress
		opts.Progress = func(i int, p float64, iters int, warmStarted bool, solveMethod string) {
			obs.RecordSweepPoint(p, iters, warmStarted)
			if fl != nil {
				tag := "cold"
				if warmStarted {
					tag = "warm"
				}
				fl.NoteDecision("point", fmt.Sprintf("p=%.6g", p),
					fmt.Sprintf("method=%s start=%s", solveMethod, tag), iters)
			}
			if pr {
				tag := "cold"
				if warmStarted {
					tag = "warm"
				}
				fmt.Fprintf(os.Stderr, "qs-threshold: point %d/%d p=%.6g done (%d iterations, %s, %s)\n",
					i+1, len(ps), p, iters, solveMethod, tag)
			}
		}
	}
	var trace *obs.Trace
	if *traceFile != "" {
		trace = obs.NewTrace(*traceEvery)
		if fl != nil {
			trace.SetRunID(fl.RunID())
		}
	}
	if trace != nil || fl != nil {
		opts.Observe = func(i int, p float64) quasispecies.SolveObserver {
			label := fmt.Sprintf("p=%.6g", p)
			var o quasispecies.SolveObserver
			if trace != nil {
				o = trace.Recorder(label)
			}
			if fl != nil {
				o = quasispecies.TeeSolveObservers(o, fl.Observer(label))
			}
			return o
		}
	}

	var sprof *quasispecies.SpanProfile
	if *spans || *spanOut != "" || *hwcFlag {
		sprof = quasispecies.StartSpanProfileOpts(quasispecies.SpanProfileOptions{HWC: *hwcFlag})
		if *hwcFlag && !sprof.HWCActive() {
			fmt.Fprintf(os.Stderr, "qs-threshold: hardware counters unavailable, continuing with wall-time spans only (%s)\n", sprof.HWCReason())
		}
	}
	var pts []quasispecies.ThresholdPoint
	if *full {
		pts, err = quasispecies.ThresholdCurveFullWith(l, ps, opts)
	} else {
		pts, err = quasispecies.ThresholdCurveWith(l, ps, opts)
	}
	if sprof != nil {
		sprof.Stop()
		fmt.Fprintln(os.Stderr, "qs-threshold: span profile (per-phase times):")
		if werr := sprof.WriteTable(os.Stderr); werr != nil {
			fmt.Fprintln(os.Stderr, "qs-threshold:", werr)
		}
		if *spanOut != "" {
			if werr := sprof.WriteChromeTraceFile(*spanOut); werr != nil {
				fmt.Fprintln(os.Stderr, "qs-threshold:", werr)
			} else {
				fmt.Fprintf(os.Stderr, "qs-threshold: span timeline written to %s (open in ui.perfetto.dev)\n", *spanOut)
			}
		}
	}
	if trace != nil {
		// Write the trace even on failure: a stagnation trace of the point
		// that failed is exactly what the file is for.
		if werr := trace.WriteFile(*traceFile); werr != nil {
			fmt.Fprintln(os.Stderr, "qs-threshold:", werr)
		} else {
			fmt.Fprintf(os.Stderr, "qs-threshold: convergence trace written to %s (%d rows)\n",
				*traceFile, len(trace.Rows()))
		}
	}
	if err != nil && fl != nil {
		if dir, ok := fl.DumpOnError(err); ok {
			fmt.Fprintf(os.Stderr, "qs-threshold: diagnostic bundle dumped to %s\n", dir)
		}
	}
	if tm != nil {
		if n := tm.Notice(); n != "" {
			fmt.Fprintf(os.Stderr, "qs-threshold: %s\n", n)
		}
	}
	exitOn(err)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprint(w, "p")
	for k := 0; k <= *nu; k++ {
		fmt.Fprintf(w, "\tGamma%d", k)
	}
	fmt.Fprintln(w)
	for _, pt := range pts {
		fmt.Fprintf(w, "%.6g", pt.P)
		for _, g := range pt.Gamma {
			fmt.Fprintf(w, "\t%.8g", g)
		}
		fmt.Fprintln(w)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "qs-threshold:", err)
		os.Exit(1)
	}
}
