// Command qs-perf maintains the repository's performance ledger
// (results/PERF_ledger.jsonl): profiled runs of a fixed benchmark solve with
// their per-phase span breakdown, appended over time so performance work is
// measured against a recorded baseline instead of memory.
//
//	qs-perf record                # run the workload, append a ledger entry
//	qs-perf list                  # show the ledger
//	qs-perf compare               # benchstat-style table of the last two entries
//	qs-perf check                 # run the workload, gate against the baseline
//
// `check` exits nonzero when a phase's share of wall time grew by more than
// -threshold (default 25%) over the last recorded entry with the same label.
// Share-of-wall is compared, not absolute seconds, so a baseline recorded on
// a fast workstation still gates a slow CI runner; -absolute switches to
// raw seconds for same-machine comparisons.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	quasispecies "repro"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/harness"
	"repro/internal/landscape"
	"repro/internal/mutation"
	"repro/internal/obs"
	"repro/internal/perf"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch cmd, argv := os.Args[1], os.Args[2:]; cmd {
	case "record":
		err = runRecord(argv)
	case "check":
		err = runCheck(argv)
	case "compare":
		err = runCompare(argv)
	case "list":
		err = runList(argv)
	case "help", "-h", "-help", "--help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "qs-perf: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "qs-perf:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: qs-perf <command> [flags]

commands:
  record    run the benchmark workload and append the result to the ledger
  check     run the workload and gate it against the last ledger baseline
  compare   print a per-phase comparison of the last two ledger entries
  list      print the ledger entries

run 'qs-perf <command> -h' for the command's flags
`)
}

// workload is the fixed benchmark configuration a ledger label identifies.
type workload struct {
	kind      string
	nu        int
	p         float64
	points    int
	reps      int
	workers   int
	hwc       bool
	ledger    string
	label     string
	flight    bool
	flightDir string
	telemetry bool

	// fl is the active flight recording of this measurement run (nil
	// without -flight); its run ID is embedded in the ledger record.
	fl *quasispecies.Flight
}

func workloadFlags(fs *flag.FlagSet) *workload {
	w := &workload{}
	fs.StringVar(&w.kind, "workload", "solve", "benchmark workload: solve (one Fmmp eigensolve) | critical (adaptive sweep across the error threshold)")
	fs.IntVar(&w.nu, "nu", 14, "chain length ν of the benchmark workload")
	fs.Float64Var(&w.p, "p", 0.01, "error rate of the solve workload")
	fs.IntVar(&w.points, "points", 9, "grid points of the critical workload")
	fs.IntVar(&w.reps, "reps", 3, "repetitions (the fastest is recorded)")
	fs.IntVar(&w.workers, "workers", 1, "compute workers (1 = serial)")
	fs.BoolVar(&w.hwc, "hwc", false, "attribute hardware counters to the profile and record per-phase IPC / cache-miss-rate in the ledger entry (degrades to wall-time-only when counters are unavailable)")
	fs.StringVar(&w.ledger, "ledger", perf.DefaultLedgerPath, "ledger file")
	fs.StringVar(&w.label, "label", "", "ledger label (default derived from the workload)")
	fs.BoolVar(&w.flight, "flight", false, "flight-record the measurement run and embed its run ID in the ledger entry")
	fs.StringVar(&w.flightDir, "flight-dir", "flight-bundles", "directory receiving flight diagnostic bundles")
	fs.BoolVar(&w.telemetry, "telemetry", false, "sample resource telemetry at 1 Hz during the measurement (served on /debug/telemetry; memory stamping works without it)")
	return w
}

// startTelemetry starts the -telemetry sampler for a measurement run and
// returns its stop function (a no-op without the flag).
func startTelemetry(w *workload) func() {
	if !w.telemetry {
		return func() {}
	}
	tm := quasispecies.StartTelemetry(quasispecies.TelemetryOptions{})
	return func() {
		if n := tm.Notice(); n != "" {
			fmt.Fprintf(os.Stderr, "qs-perf: %s\n", n)
		}
		tm.Stop()
	}
}

// startFlight begins the -flight recording for a measurement run. The
// subcommand flag set is collected manually (FlightOptions only
// auto-collects the global flag.CommandLine).
func startFlight(w *workload, fs *flag.FlagSet) {
	if !w.flight {
		return
	}
	flags := make(map[string]string)
	fs.VisitAll(func(f *flag.Flag) { flags[f.Name] = f.Value.String() })
	w.fl = quasispecies.StartFlight(quasispecies.FlightOptions{
		Dir: w.flightDir, Tool: "qs-perf", Args: os.Args[1:], Flags: flags,
		Nu: w.nu, Method: w.kind, Workers: w.workers,
		LedgerPath: w.ledger, LedgerLabel: w.resolveLabel(),
	})
	fmt.Fprintf(os.Stderr, "qs-perf: flight recording run %s (bundles under %s)\n",
		w.fl.RunID(), w.flightDir)
}

// finishFlight stamps the flight identity into the measured record (run ID
// plus the latest diagnostic bundle, if the run dumped one) and stops the
// recording. On a failed measurement it dumps the solver error's bundle
// first.
func finishFlight(w *workload, rec *perf.Record, err error) {
	if w.fl == nil {
		return
	}
	if err != nil {
		if dir, ok := w.fl.DumpOnError(err); ok {
			fmt.Fprintf(os.Stderr, "qs-perf: diagnostic bundle dumped to %s\n", dir)
		}
	}
	if rec != nil {
		rec.RunID = w.fl.RunID()
		if bs := w.fl.Bundles(); len(bs) > 0 {
			rec.FlightBundle = bs[len(bs)-1]
		}
	}
	w.fl.Stop()
}

// profileRecord converts one profiled repetition into a ledger record,
// carrying the hardware-counter columns when the profile attributed any.
func profileRecord(w *workload, prof *quasispecies.SpanProfile) perf.Record {
	phases := prof.Phases()
	rec := perf.Record{
		Label: w.resolveLabel(), Reps: w.reps, Nu: w.nu,
		WallSeconds: prof.Wall().Seconds(),
		Phases:      make([]perf.PhaseStat, len(phases)),
	}
	if w.hwc {
		rec.HWCActive = prof.HWCActive()
		rec.HWCReason = prof.HWCReason()
	}
	for i, ph := range phases {
		ps := perf.PhaseStat{
			Layer: ph.Layer, Name: ph.Name, Count: ph.Count,
			TotalSeconds: ph.Total.Seconds(), SelfSeconds: ph.Self.Seconds(),
		}
		if ph.HWCSamples > 0 {
			ps.HWCSamples = ph.HWCSamples
			ps.IPC = ph.IPC
			ps.CacheMissRate = ph.CacheMissRate
		}
		rec.Phases[i] = ps
	}
	return rec
}

// startProfile opens the repetition's span profile, with counters when
// the workload asked for them. The degradation reason is reported once
// (first repetition) and preserved in the record.
func startProfile(w *workload, rep int) *quasispecies.SpanProfile {
	prof := quasispecies.StartSpanProfileOpts(quasispecies.SpanProfileOptions{HWC: w.hwc})
	if w.hwc && rep == 0 && !prof.HWCActive() {
		fmt.Fprintf(os.Stderr, "qs-perf: hardware counters unavailable, recording wall-time phases only (%s)\n", prof.HWCReason())
	}
	return prof
}

// stampMemory records the measurement process' memory footprint into the
// record after the last repetition: peak RSS (VmHWM, which covers every
// rep — the conservative bound the gate wants) and the device-arena
// occupancy high-water. Degrades silently to zero fields when procfs is
// unavailable; the gate skips records without them.
func stampMemory(rec *perf.Record) {
	if mem := obs.ReadMemStatus(); mem.Available {
		rec.PeakRSSBytes = mem.PeakRSSBytes
	}
	_, _, hi := device.ArenaTotals()
	rec.ArenaHighWaterFloats = hi
}

func (w *workload) resolveLabel() string {
	if w.label == "" {
		switch w.kind {
		case "critical":
			w.label = fmt.Sprintf("critical-nu%d-auto-w%d", w.nu, w.workers)
		default:
			w.label = fmt.Sprintf("singlepeak-nu%d-p%g-fmmp-w%d", w.nu, w.p, w.workers)
		}
	}
	return w.label
}

// measure runs the workload reps times under a span profile and returns the
// fastest repetition as a ledger record (best-of discards scheduler noise
// and cold caches; the phase shares of the fastest run are the cleanest).
func measure(w *workload) (perf.Record, error) {
	switch w.kind {
	case "solve":
		return measureSolve(w)
	case "critical":
		return measureCritical(w)
	default:
		return perf.Record{}, fmt.Errorf("unknown workload %q (want solve or critical)", w.kind)
	}
}

func measureSolve(w *workload) (perf.Record, error) {
	l, err := quasispecies.SinglePeak(w.nu, 2, 1)
	if err != nil {
		return perf.Record{}, err
	}
	mut, err := quasispecies.UniformMutation(w.nu, w.p)
	if err != nil {
		return perf.Record{}, err
	}
	opts := []quasispecies.Option{
		quasispecies.WithMethod(quasispecies.MethodFmmp),
		quasispecies.WithWorkers(w.workers),
	}
	if w.fl != nil {
		opts = append(opts, quasispecies.WithObserver(w.fl.Observer(w.resolveLabel())))
	}
	model, err := quasispecies.New(mut, l, opts...)
	if err != nil {
		return perf.Record{}, err
	}

	var best perf.Record
	for r := 0; r < w.reps; r++ {
		prof := startProfile(w, r)
		sol, err := model.Solve()
		prof.Stop()
		if err != nil {
			return perf.Record{}, fmt.Errorf("rep %d: %w", r+1, err)
		}
		if r > 0 && prof.Wall().Seconds() >= best.WallSeconds {
			continue
		}
		rec := profileRecord(w, prof)
		rec.P, rec.Method = w.p, "fmmp"
		rec.Iterations, rec.Lambda = sol.Iterations, sol.Lambda
		best = rec
	}
	stampMemory(&best)
	best.Time = time.Now().UTC().Format(time.RFC3339)
	best.Rev = perf.GitRev(".")
	best.Host = harness.CollectHostInfo()
	return best, nil
}

// measureCritical profiles the adaptive critical-window sweep: a warm
// continuation grid straddling p_c solved with the auto method selector,
// the workload whose span breakdown includes the Krylov-gear phases
// (gap_probe, cheb_poly, inner_solve, tridiag).
func measureCritical(w *workload) (perf.Record, error) {
	l, err := landscape.NewSinglePeak(w.nu, 2, 1)
	if err != nil {
		return perf.Record{}, err
	}
	q, err := mutation.NewUniform(w.nu, 0.01)
	if err != nil {
		return perf.Record{}, err
	}
	pc := 1 - math.Pow(2, -1/float64(w.nu))
	if w.points < 2 {
		return perf.Record{}, fmt.Errorf("critical workload needs at least 2 points, got %d", w.points)
	}
	ps := make([]float64, w.points)
	for i := range ps {
		ps[i] = 0.90*pc + (1.08*pc-0.90*pc)*float64(i)/float64(w.points-1)
	}

	var best perf.Record
	for r := 0; r < w.reps; r++ {
		prof := startProfile(w, r)
		var stats *harness.SweepStats
		_, stats, err = harness.ThresholdSweepFullOpts(q, l, ps, harness.SweepOptions{
			Workers: w.workers, WarmStart: true, Method: core.SolveAuto,
		})
		prof.Stop()
		if err != nil {
			return perf.Record{}, fmt.Errorf("rep %d: %w", r+1, err)
		}
		if r > 0 && prof.Wall().Seconds() >= best.WallSeconds {
			continue
		}
		rec := profileRecord(w, prof)
		rec.P, rec.Method = ps[len(ps)-1], "adaptive-sweep"
		rec.Iterations = stats.TotalIterations()
		best = rec
	}
	stampMemory(&best)
	best.Time = time.Now().UTC().Format(time.RFC3339)
	best.Rev = perf.GitRev(".")
	best.Host = harness.CollectHostInfo()
	return best, nil
}

func runRecord(argv []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	w := workloadFlags(fs)
	fs.Parse(argv)
	stopTelemetry := startTelemetry(w)
	defer stopTelemetry()
	startFlight(w, fs)
	rec, err := measure(w)
	finishFlight(w, &rec, err)
	if err != nil {
		return err
	}
	if err := perf.Append(w.ledger, rec); err != nil {
		return err
	}
	hwcNote := ""
	if rec.HWCActive {
		hwcNote = " (with hardware counters)"
	}
	fmt.Printf("recorded %s: wall %.4gs, %d iterations, %d phases%s → %s\n",
		rec.Label, rec.WallSeconds, rec.Iterations, len(rec.Phases), hwcNote, w.ledger)
	return nil
}

func runCheck(argv []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	w := workloadFlags(fs)
	threshold := fs.Float64("threshold", 0.25, "relative phase growth that fails the check")
	ipcThreshold := fs.Float64("ipc-threshold", 0.15, "relative per-phase IPC drop (or cache-miss-rate rise) that triggers the ADVISORY hardware-counter warning; never fails the check")
	absolute := fs.Bool("absolute", false, "gate absolute seconds instead of share-of-wall (same-machine baselines only)")
	update := fs.Bool("update", false, "also append the measured run to the ledger")
	fs.Parse(argv)

	recs, err := perf.Read(w.ledger)
	if err != nil {
		return err
	}
	base, ok := perf.Latest(recs, w.resolveLabel())
	stopTelemetry := startTelemetry(w)
	defer stopTelemetry()
	startFlight(w, fs)
	cur, merr := measure(w)
	finishFlight(w, &cur, merr)
	if merr != nil {
		return merr
	}
	if *update {
		if err := perf.Append(w.ledger, cur); err != nil {
			return err
		}
	}
	if !ok {
		fmt.Printf("no baseline for %q in %s — run 'qs-perf record' first; nothing to gate\n",
			w.label, w.ledger)
		return nil
	}
	if err := perf.FormatCompare(os.Stdout, base, cur); err != nil {
		return err
	}
	// The hardware-counter gate is advisory: IPC varies with the host CPU,
	// so drift is reported next to the verdict but never fails the check.
	if drifts, both := perf.IPCGate(base, cur, *ipcThreshold, 0); both {
		if len(drifts) == 0 {
			fmt.Printf("hwc advisory: per-phase IPC and cache-miss rates within %.0f%% of the baseline\n", *ipcThreshold*100)
		} else {
			fmt.Printf("hwc advisory: %d phase(s) drifted more than %.0f%% (informational, does not fail the check):\n",
				len(drifts), *ipcThreshold*100)
			for _, d := range drifts {
				fmt.Println("  ", d.String())
			}
		}
	} else if w.hwc {
		fmt.Println("hwc advisory: skipped (baseline or current run has no counter data)")
	}
	violations := perf.Gate(base, cur, perf.GateOptions{
		Threshold: *threshold, AbsoluteSeconds: *absolute,
	})
	if len(violations) == 0 {
		fmt.Printf("OK: no phase regressed more than %.0f%% against the %s baseline\n",
			*threshold*100, base.Time)
		return nil
	}
	fmt.Printf("REGRESSION: %d phase(s) exceeded the %.0f%% threshold:\n", len(violations), *threshold*100)
	for _, v := range violations {
		fmt.Println("  ", v.String())
	}
	os.Exit(1)
	return nil
}

func runCompare(argv []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	ledger := fs.String("ledger", perf.DefaultLedgerPath, "ledger file")
	label := fs.String("label", "", "compare the last two entries with this label (default: any)")
	fs.Parse(argv)
	recs, err := perf.Read(*ledger)
	if err != nil {
		return err
	}
	var matched []perf.Record
	for _, r := range recs {
		if *label == "" || r.Label == *label {
			matched = append(matched, r)
		}
	}
	if len(matched) < 2 {
		return fmt.Errorf("need at least two ledger entries to compare, have %d", len(matched))
	}
	return perf.FormatCompare(os.Stdout, matched[len(matched)-2], matched[len(matched)-1])
}

func runList(argv []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	ledger := fs.String("ledger", perf.DefaultLedgerPath, "ledger file")
	fs.Parse(argv)
	recs, err := perf.Read(*ledger)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		fmt.Printf("ledger %s is empty\n", *ledger)
		return nil
	}
	fmt.Printf("%-20s %-9s %-32s %10s %8s %10s %12s %s\n",
		"time", "rev", "label", "wall[s]", "iters", "peak-rss", "arena-hi", "host")
	for _, r := range recs {
		rss, hi := "-", "-"
		if r.PeakRSSBytes > 0 {
			rss = obs.FormatBytes(r.PeakRSSBytes)
		}
		if r.ArenaHighWaterFloats > 0 {
			hi = fmt.Sprintf("%df64", r.ArenaHighWaterFloats)
		}
		fmt.Printf("%-20s %-9s %-32s %10.4g %8d %10s %12s %s/%s ncpu=%d\n",
			r.Time, orDash(r.Rev), r.Label, r.WallSeconds, r.Iterations,
			rss, hi, r.Host.GOOS, r.Host.GOARCH, r.Host.NumCPU)
	}
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
